"""Main-memory value store and the request-based contention channel.

Table 1 describes memory as a "request-based contention model, 200 cycle".
:class:`MemoryChannel` implements that: each request occupies the channel
for a configurable number of cycles, so bursts of misses queue up and see
progressively longer latencies — which is what limits how much MLP both
the out-of-order window and runahead can actually extract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..isa.instructions import WORD_BYTES


class MainMemory:
    """Flat word-granular value store — the single source of data truth.

    Committed stores write here; caches only track presence.  Values are
    arbitrary Python objects (ints for integer words, floats for fp words),
    matching the interpreter's semantics exactly so differential tests can
    compare end states directly.
    """

    def __init__(self, image=None):
        self._words: Dict[int, object] = {}
        if image is not None:
            self._words.update(image.initial_words())

    def read_word(self, addr):
        if addr % WORD_BYTES:
            raise ValueError(f"misaligned load address: {addr:#x}")
        return self._words.get(addr, 0)

    def write_word(self, addr, value):
        if addr % WORD_BYTES:
            raise ValueError(f"misaligned store address: {addr:#x}")
        self._words[addr] = value

    def snapshot(self):
        """Return a copy of all stored words (for differential tests)."""
        return dict(self._words)


@dataclass
class ChannelStats:
    requests: int = 0
    queued_cycles: int = 0

    @property
    def mean_queue_delay(self):
        return self.queued_cycles / self.requests if self.requests else 0.0


class MemoryChannel:
    """Single memory channel with fixed service latency plus occupancy.

    A request arriving at cycle ``now`` starts at ``max(now, next_free)``,
    holds the channel for ``occupancy`` cycles, and completes
    ``latency`` cycles after its start.
    """

    def __init__(self, latency=200, occupancy=8):
        if latency <= 0 or occupancy < 0:
            raise ValueError("latency must be positive, occupancy >= 0")
        self.latency = latency
        self.occupancy = occupancy
        self._next_free = 0
        self.stats = ChannelStats()

    def request(self, now):
        """Issue a request; returns its completion cycle."""
        start = now if now > self._next_free else self._next_free
        self._next_free = start + self.occupancy
        self.stats.requests += 1
        self.stats.queued_cycles += start - now
        return start + self.latency

    def reset(self):
        self._next_free = 0
        self.stats = ChannelStats()

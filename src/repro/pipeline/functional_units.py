"""Functional-unit pool.

Units are fully pipelined: each unit accepts one operation per cycle and
produces its result ``latency`` cycles later.  (Real integer dividers are
usually iterative; modeling them as pipelined slightly favours
divide-heavy code and is irrelevant to every experiment in the paper.)
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..isa.instructions import FuKind


class FunctionalUnitPool:
    """Tracks per-cycle issue-slot availability for each unit kind."""

    def __init__(self, config: Dict[FuKind, Tuple[int, int]]):
        self._counts = {kind: count for kind, (count, _) in config.items()}
        self._latencies = {kind: lat for kind, (_, lat) in config.items()}
        self._used: Dict[FuKind, int] = {}
        self._cycle = -1

    def new_cycle(self, cycle):
        """Reset per-cycle slot usage."""
        self._cycle = cycle
        self._used = {}

    def can_issue(self, kind: FuKind) -> bool:
        return self._used.get(kind, 0) < self._counts.get(kind, 0)

    def issue(self, kind: FuKind) -> int:
        """Claim a slot; returns the operation latency."""
        used = self._used.get(kind, 0)
        if used >= self._counts.get(kind, 0):
            raise RuntimeError(f"no free {kind.value} unit")
        self._used[kind] = used + 1
        return self._latencies[kind]

    def latency(self, kind: FuKind) -> int:
        return self._latencies[kind]

    def count(self, kind: FuKind) -> int:
        return self._counts.get(kind, 0)

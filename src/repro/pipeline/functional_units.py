"""Functional-unit pool.

Units are fully pipelined: each unit accepts one operation per cycle and
produces its result ``latency`` cycles later.  (Real integer dividers are
usually iterative; modeling them as pipelined slightly favours
divide-heavy code and is irrelevant to every experiment in the paper.)

``can_issue``/``issue`` are called for every issue attempt of every
cycle, so the pool is three flat lists indexed by the integer
:class:`~repro.isa.instructions.FuKind` value — no dict hashing on the
hot path, and the per-cycle reset is a single list copy.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..isa.instructions import NUM_FU_KINDS, FuKind


class FunctionalUnitPool:
    """Tracks per-cycle issue-slot availability for each unit kind."""

    def __init__(self, config: Dict[FuKind, Tuple[int, int]]):
        self._counts = [0] * NUM_FU_KINDS
        self._latencies = [0] * NUM_FU_KINDS
        for kind, (count, latency) in config.items():
            self._counts[kind] = count
            self._latencies[kind] = latency
        self._zero = [0] * NUM_FU_KINDS
        self._used = [0] * NUM_FU_KINDS
        self._cycle = -1

    def new_cycle(self, cycle):
        """Reset per-cycle slot usage."""
        self._cycle = cycle
        self._used = self._zero.copy()

    def can_issue(self, kind) -> bool:
        return self._used[kind] < self._counts[kind]

    def issue(self, kind) -> int:
        """Claim a slot; returns the operation latency."""
        used = self._used[kind]
        if used >= self._counts[kind]:
            raise RuntimeError(f"no free {FuKind(kind).label} unit")
        self._used[kind] = used + 1
        return self._latencies[kind]

    def latency(self, kind) -> int:
        return self._latencies[kind]

    def count(self, kind) -> int:
        return self._counts[kind]

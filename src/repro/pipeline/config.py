"""Core configuration (Table 1 of the paper).

``CoreConfig.paper()`` reproduces Table 1 exactly:

====================  =========================================================
Component             Parameter
====================  =========================================================
Core                  2 GHz, out-of-order (frequency is irrelevant to cycles)
Processor width       4-wide fetch/decode/dispatch/commit
Pipeline depth        6 front-end stages
Branch predictor      two-level adaptive predictor
Functional units      4 int add (1 cy), 2 int mult (2 cy), 1 int div (5 cy),
                      2 fp add (5 cy), 1 fp mult (10 cy), 1 fp div (15 cy)
Register file         80 int, 40 fp, 40 xmm (physical)
ROB                   256 entries
Queues                IQ 40, load 40, store 40
L1 I/D                16 KB, 4-way, 2 cycles
L2                    128 KB, 8-way, 8 cycles
L3                    4 MB, 8-way, 32 cycles
Memory                request-based contention model, 200 cycles
====================  =========================================================

``CoreConfig.small()`` shrinks buffers and caches for fast unit tests while
keeping every mechanism active.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from ..isa.instructions import FuKind
from ..isa.registers import NUM_FP_REGS, NUM_INT_REGS, NUM_VEC_REGS
from ..memory.hierarchy import HierarchyConfig

#: Table-1 functional units: kind -> (unit count, latency in cycles).
PAPER_FUNCTIONAL_UNITS: Dict[FuKind, Tuple[int, int]] = {
    FuKind.INT_ALU: (4, 1),
    FuKind.INT_MUL: (2, 2),
    FuKind.INT_DIV: (1, 5),
    FuKind.FP_ADD: (2, 5),
    FuKind.FP_MUL: (1, 10),
    FuKind.FP_DIV: (1, 15),
    FuKind.MEM: (2, 1),      # two cache ports; latency comes from the caches
    FuKind.BRANCH: (2, 1),
    FuKind.NONE: (4, 1),
}


@dataclass(frozen=True)
class RunaheadConfig:
    """Tunables of the runahead machinery (shared by all variants)."""

    #: Cycles of front-end stall charged when exiting runahead mode
    #: (checkpoint restore + pipeline refill start).
    exit_overhead: int = 4
    #: Runahead-cache capacity in 8-byte entries (Mutlu'03 uses 512 B).
    cache_entries: int = 64
    #: Keep direction-predictor training performed during runahead
    #: (the paper's and Mutlu's default; the PHT poisoning persists).
    train_in_runahead: bool = True
    #: Vector runahead: prefetch lanes issued per strided load.
    vector_lanes: int = 8
    #: Vector runahead: stride must repeat this many times to be trusted.
    stride_confidence: int = 2
    #: Secure runahead: SL-cache capacity in lines.
    sl_cache_entries: int = 64
    #: Secure runahead: SL-cache hit latency upon promotion to L1.
    sl_cache_latency: int = 3


@dataclass(frozen=True)
class CoreConfig:
    """All sizing/latency parameters of the out-of-order core."""

    width: int = 4                 # fetch/decode/dispatch/commit width
    issue_width: int = 4
    frontend_depth: int = 6        # fetch-to-dispatch latency in cycles
    fetch_queue: int = 24
    rob_size: int = 256
    iq_size: int = 40
    lq_size: int = 40
    sq_size: int = 40
    int_regs: int = 80             # physical registers (Table 1)
    fp_regs: int = 40
    vec_regs: int = 40
    functional_units: Dict[FuKind, Tuple[int, int]] = field(
        default_factory=lambda: dict(PAPER_FUNCTIONAL_UNITS))
    predictor: str = "twolevel"
    rsb_entries: int = 16
    btb_index_bits: int = 10
    btb_tag_bits: int = 0
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig.paper)
    runahead: RunaheadConfig = field(default_factory=RunaheadConfig)

    def __post_init__(self):
        if self.int_regs < NUM_INT_REGS or self.fp_regs < NUM_FP_REGS or \
                self.vec_regs < NUM_VEC_REGS:
            raise ValueError(
                "physical register files must cover the architectural state")
        if self.width <= 0 or self.rob_size <= 0:
            raise ValueError("width and rob_size must be positive")

    @property
    def rename_int(self):
        """Rename (non-architectural) integer registers available."""
        return self.int_regs - NUM_INT_REGS

    @property
    def rename_fp(self):
        return self.fp_regs - NUM_FP_REGS

    @property
    def rename_vec(self):
        return self.vec_regs - NUM_VEC_REGS

    @classmethod
    def paper(cls, **overrides):
        """The exact Table-1 machine."""
        return cls(**overrides)

    @classmethod
    def small(cls, **overrides):
        """Scaled-down machine for fast tests (all mechanisms active)."""
        params = dict(
            rob_size=32,
            iq_size=12,
            lq_size=8,
            sq_size=8,
            fetch_queue=12,
            int_regs=NUM_INT_REGS + 16,
            fp_regs=NUM_FP_REGS + 8,
            vec_regs=NUM_VEC_REGS + 8,
            hierarchy=HierarchyConfig.small(),
        )
        params.update(overrides)
        return cls(**params)

    def with_overrides(self, **overrides):
        """Return a copy with selected fields replaced."""
        return replace(self, **overrides)

"""Execution statistics collected by the core.

Everything the benchmarks report comes from here: IPC (Fig. 7), transient
instruction counts (Fig. 10), runahead episode accounting, and branch /
cache statistics for the analysis notebooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CoreStats:
    cycles: int = 0
    committed: int = 0
    fetched: int = 0
    dispatched: int = 0
    issued: int = 0
    squashed: int = 0
    branch_mispredicts: int = 0
    fence_stalls: int = 0

    # Runahead accounting.
    runahead_episodes: int = 0
    runahead_cycles: int = 0
    pseudo_retired: int = 0
    inv_branches: int = 0          # branches never resolved (the attack surface)
    inv_instructions: int = 0      # instructions poisoned by INV sources
    runahead_prefetches: int = 0   # memory-level misses launched in runahead
    filtered_instructions: int = 0 # precise runahead: non-slice drops
    vector_prefetches: int = 0     # vector runahead: extra lanes issued

    # Transient-window accounting (Fig. 10): instructions that entered
    # execution but never architecturally committed.
    transient_executed: int = 0

    @property
    def ipc(self):
        return self.committed / self.cycles if self.cycles else 0.0

    def summary(self):
        """Short human-readable digest."""
        lines = [
            f"cycles={self.cycles} committed={self.committed} "
            f"ipc={self.ipc:.3f}",
            f"branch mispredicts={self.branch_mispredicts} "
            f"squashed={self.squashed}",
        ]
        if self.runahead_episodes:
            lines.append(
                f"runahead: episodes={self.runahead_episodes} "
                f"cycles={self.runahead_cycles} "
                f"pseudo-retired={self.pseudo_retired} "
                f"prefetches={self.runahead_prefetches} "
                f"inv-branches={self.inv_branches}")
        return "\n".join(lines)

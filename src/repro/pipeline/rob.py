"""Reorder buffer entries and the value-based in-flight state.

The core is a value-based Tomasulo machine: every ROB entry carries the
computed result of its instruction, the register alias table maps each
architectural register to its newest in-flight producer, and operands are
read either from a producer entry or from the architectural file.

``inv`` implements the runahead INV bit (Mutlu HPCA'03): results derived
from the stalling load are poisoned and propagate invalidity instead of
values.  An INV *branch* is the SPECRUN attack surface — it is predicted
but never resolved.

Scheduling is wakeup-driven: ``pending_srcs`` counts source producers
whose results are still outstanding, and ``consumers`` is the producer's
wakeup list — when a producer's result arrives, the core decrements each
consumer's counter and queues the ones that reached zero for issue.  The
issue stage therefore never scans the issue queue asking "are your
operands ready yet?".
"""

from __future__ import annotations

from collections import deque
from typing import Optional

# Entry lifecycle states.
DISPATCHED = 0   # in the ROB + issue queue, waiting for operands/FU
ISSUED = 1       # executing; result arrives at `completion`
DONE = 2         # result available (or pseudo-value for stores)


class RobEntry:
    """One in-flight instruction."""

    __slots__ = (
        "seq", "pc", "instr", "state", "value", "inv", "completion",
        "prediction", "resolved", "actual_taken", "actual_target",
        "mem_addr", "store_value", "mem_level", "is_fence", "squashed",
        "src_producers", "filtered", "taint", "btag", "issue_cycle",
        "waiting_sl", "is_branch", "is_load", "is_store",
        "pending_srcs", "consumers", "store_waiters",
    )

    def __init__(self, seq, pc, instr):
        self.seq = seq
        self.pc = pc
        self.instr = instr
        self.state = DISPATCHED
        self.value = None
        self.inv = False
        self.completion = 0
        self.prediction = None       # branch Prediction from fetch
        self.resolved = False
        self.actual_taken = None
        self.actual_target = None
        self.mem_addr = None         # effective address once computed
        self.store_value = None
        self.mem_level = None        # hierarchy level that served a load
        self.is_fence = False
        self.squashed = False
        self.src_producers = None    # tuple: RobEntry | None per source
        self.filtered = False        # precise runahead: dropped from slice
        self.taint = None            # defense: taint label set
        self.btag = None             # defense: (branch scope id, m) tag
        self.issue_cycle = None
        self.waiting_sl = None       # defense: blocked on SL-cache USL wait
        # Decode-time classification, copied from the instruction so the
        # commit/queue paths read one attribute instead of two.
        self.is_branch = instr.branch
        self.is_load = instr.pipe_load
        self.is_store = instr.pipe_store
        # Wakeup scheduling state (see module docstring).
        self.pending_srcs = 0        # outstanding source producers
        self.consumers = None        # entries to wake when this completes
        self.store_waiters = None    # loads waiting for this store's address

    def __repr__(self):
        return (f"RobEntry(seq={self.seq}, pc={self.pc:#x}, "
                f"{self.instr.opcode.mnemonic}, state={self.state})")


class ReorderBuffer:
    """Bounded FIFO of :class:`RobEntry` (in program order)."""

    def __init__(self, capacity):
        self.capacity = capacity
        self._entries = deque()

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def full(self):
        return len(self._entries) >= self.capacity

    @property
    def empty(self):
        return not self._entries

    def head(self) -> Optional[RobEntry]:
        return self._entries[0] if self._entries else None

    def push(self, entry: RobEntry):
        if self.full:
            raise OverflowError("ROB overflow")
        self._entries.append(entry)

    def pop_head(self) -> RobEntry:
        return self._entries.popleft()

    def squash_younger(self, seq):
        """Remove every entry younger than ``seq``; returns the victims."""
        victims = []
        entries = self._entries
        while entries and entries[-1].seq > seq:
            victim = entries.pop()
            victim.squashed = True
            victims.append(victim)
        return victims

    def clear(self):
        """Remove everything (runahead exit); returns the victims."""
        victims = list(self._entries)
        for victim in victims:
            victim.squashed = True
        self._entries.clear()
        return victims

"""Out-of-order core: configuration, ROB, functional units, the simulator."""

from .config import CoreConfig, RunaheadConfig, PAPER_FUNCTIONAL_UNITS
from .core import (BLOCKED, Core, MODE_NORMAL, MODE_RUNAHEAD,
                   SimulationError, run_on_core)
from .functional_units import FunctionalUnitPool
from .rob import DISPATCHED, DONE, ISSUED, ReorderBuffer, RobEntry
from .stats import CoreStats

__all__ = [
    "CoreConfig", "RunaheadConfig", "PAPER_FUNCTIONAL_UNITS", "BLOCKED",
    "Core", "MODE_NORMAL", "MODE_RUNAHEAD", "SimulationError", "run_on_core",
    "FunctionalUnitPool", "DISPATCHED", "DONE", "ISSUED", "ReorderBuffer",
    "RobEntry", "CoreStats",
]

"""Cycle-level out-of-order core with pluggable runahead execution.

The machine is a value-based Tomasulo+ROB design (see ``rob.py``) staged
as fetch → (6-cycle front end) → dispatch → issue/execute → complete →
commit, processed in reverse order each cycle so results flow with
realistic timing.  Runahead mode (the paper's Fig. 6) changes three
things, all implemented here with policy delegated to the attached
:class:`~repro.runahead.base.RunaheadController`:

* the stalling load's destination is poisoned (INV) and the load
  pseudo-retires immediately, unblocking the window;
* commit becomes *pseudo-retire*: results update the (checkpointed)
  register file, stores go to the runahead cache, nothing reaches
  architectural memory;
* branches with INV sources are predicted but **never resolved** — the
  SPECRUN attack surface — while valid branches resolve as in normal
  mode.

On exit the checkpoint is restored and fetch resumes at the stalling
load.  The only surviving side effects are cache fills.

Scheduling is *wakeup-driven* (docs/PERFORMANCE.md): every dispatched
instruction knows how many of its source producers are still in flight
(``pending_srcs``), producers carry wakeup lists of their consumers, and
``_ready`` is a seq-ordered heap of instructions whose operands are all
available.  The issue stage pops from that heap instead of scanning the
issue queue, so a cycle's issue work is proportional to what can
actually issue — the behaviour (issue order, FU arbitration, stats) is
bit-identical to the scan it replaced, which the golden-stats tests
(``tests/pipeline/test_golden_stats.py``) pin down.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, List, Optional

from ..branch.btb import BranchTargetBuffer
from ..branch.predictors import make_direction_predictor
from ..branch.rsb import ReturnStackBuffer
from ..branch.unit import BranchUnit
from ..isa.instructions import (ALU_EVAL, INSTR_BYTES, WORD_BYTES, FuKind,
                                Opcode, eval_branch, to_signed64,
                                to_unsigned64)
from ..isa.program import Program
from ..isa.registers import (NUM_ARCH_REGS, REG_SP, REG_ZERO,
                             make_register_file)
from ..memory.hierarchy import (LEVEL_L1, LEVEL_MEM, LEVEL_PENDING,
                                MemoryHierarchy)
from ..memory.main_memory import MainMemory
from ..obs.events import (EV_COMMIT as _EV_COMMIT,
                          EV_DISPATCH as _EV_DISPATCH,
                          EV_FETCH as _EV_FETCH, EV_INV as _EV_INV,
                          EV_ISSUE as _EV_ISSUE,
                          EV_MISPREDICT as _EV_MISPREDICT,
                          EV_PSEUDO_RETIRE as _EV_PSEUDO_RETIRE,
                          EV_RA_ENTER as _EV_RA_ENTER,
                          EV_RA_EXIT as _EV_RA_EXIT,
                          EV_SQUASH as _EV_SQUASH)
from ..runahead.base import NoRunahead, RunaheadController
from ..runahead.checkpoint import Checkpoint
from ..runahead.runahead_cache import RunaheadCache
from .config import CoreConfig
from .functional_units import FunctionalUnitPool
from .rob import DISPATCHED, DONE, ISSUED, ReorderBuffer, RobEntry
from .stats import CoreStats

MODE_NORMAL = "normal"
MODE_RUNAHEAD = "runahead"

#: Pseudo-levels recorded on load entries.
LEVEL_FORWARD = "fwd"     # store-to-load forwarding
LEVEL_RUNAHEAD = "rac"    # runahead-cache hit
LEVEL_SL = "sl"           # SL-cache hit (secure runahead)

_MASK64 = (1 << 64) - 1

# Hot-path opcode/FU constants (module-level binding beats repeated
# enum-class attribute lookups inside the per-cycle loops).
_HALT = Opcode.HALT
_RET = Opcode.RET
_CALL = Opcode.CALL
_JMP = Opcode.JMP
_JR = Opcode.JR
_NOP = Opcode.NOP
_FENCE = Opcode.FENCE
_RDTSC = Opcode.RDTSC
_CLFLUSH = Opcode.CLFLUSH
_VSTORE = Opcode.VSTORE
_FSTORE = Opcode.FSTORE
_FU_MEM = FuKind.MEM
_FU_BRANCH = FuKind.BRANCH

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Sentinel returned through the issue path when an entry parked itself
#: on a store's wakeup list: it neither issued nor needs a retry — the
#: store's issue will re-queue it.
_WAIT = object()


class SimulationError(RuntimeError):
    """Raised on internal inconsistencies (never on wrong-path garbage)."""


class _Fetched:
    """One front-end slot: instruction plus fetch-time prediction."""

    __slots__ = ("pc", "instr", "prediction", "ready_cycle")

    def __init__(self, pc, instr, prediction, ready_cycle):
        self.pc = pc
        self.instr = instr
        self.prediction = prediction
        self.ready_cycle = ready_cycle


class Core:
    """The simulated processor."""

    def __init__(self, program: Program, memory_image=None,
                 config: Optional[CoreConfig] = None,
                 runahead: Optional[RunaheadController] = None,
                 initial_sp: Optional[int] = None, warm_icache=False,
                 hierarchy: Optional[MemoryHierarchy] = None):
        self.program = program
        self.config = config or CoreConfig.paper()
        if hierarchy is None:
            hierarchy = MemoryHierarchy(self.config.hierarchy)
        elif hierarchy.config != self.config.hierarchy:
            # A multi-core system hands each core a view of the shared
            # hierarchy; its geometry must be the one the core config
            # describes, else latency bookkeeping silently diverges.
            raise ValueError("hierarchy config disagrees with core config")
        self.hierarchy = hierarchy
        if warm_icache:
            # Steady-state assumption for micro-timing experiments: the
            # code is hot (a real attacker's loop would have warmed it).
            self.hierarchy.warm_code_range(
                0, max(program.end_pc, INSTR_BYTES))
        self.memory = MainMemory(memory_image)
        self.branch_unit = BranchUnit(
            direction=make_direction_predictor(self.config.predictor),
            btb=BranchTargetBuffer(self.config.btb_index_bits,
                                   self.config.btb_tag_bits),
            rsb=ReturnStackBuffer(self.config.rsb_entries))
        self.rob = ReorderBuffer(self.config.rob_size)
        self.fus = FunctionalUnitPool(self.config.functional_units)

        self.arch_regs = make_register_file()
        if initial_sp is not None:
            self.arch_regs[REG_SP] = to_unsigned64(initial_sp)
        self.arch_inv = [False] * NUM_ARCH_REGS
        self.rat: List[Optional[RobEntry]] = [None] * NUM_ARCH_REGS
        self._rename_free = {"int": self.config.rename_int,
                             "fp": self.config.rename_fp,
                             "vec": self.config.rename_vec}

        self.iq: List[RobEntry] = []
        self.lq: List[RobEntry] = []
        self.sq: List[RobEntry] = []
        # Front-end queue: deque because dispatch consumes from the left
        # every cycle (O(1) popleft vs O(n) list.pop(0)).
        self.frontend: Deque[_Fetched] = deque()
        self.fetch_pc = 0
        self.fetch_stall_until = 0
        self.fetch_halted = False
        self._last_inst_line = None

        self.cycle = 0
        self.seq = 0
        self.mode = MODE_NORMAL
        self.halted = False
        self.checkpoint: Optional[Checkpoint] = None
        self.runahead = runahead or NoRunahead()
        self.runahead.attach(self)
        #: True when the controller keeps the base-class (accept-all)
        #: dispatch filter — lets runahead-mode dispatch skip a virtual
        #: call per instruction.
        self._filter_is_default = (
            type(self.runahead).filter_dispatch
            is RunaheadController.filter_dispatch)
        self.runahead_cache = RunaheadCache(self.config.runahead.cache_entries)

        self.stats = CoreStats()
        #: Observability sink (repro.obs.sink) — ``None`` means tracing
        #: is off and every emit site is a single is-None test.  Sinks
        #: observe only; nothing on the result path reads them.
        self.trace = None
        self._completions = []      # heap of (completion, seq, entry)
        #: Heap records whose entry has been squashed (they stay in
        #: ``_completions`` until popped or compacted away).
        self._squashed_completions = 0
        #: Wakeup-driven scheduler: heap of (seq, entry) whose operands
        #: are all available and which have not issued yet.
        self._ready = []
        self._activity = False
        # Transient-window tracking (Fig. 10): base seq of the current
        # memory-stall episode and the deepest younger dispatch seen.
        self._stall_base_seq = None
        self._window_max = 0

    # ------------------------------------------------------------------ utils --

    def reg_read(self, reg):
        """Architectural read honouring the zero register and INV bits."""
        if reg == REG_ZERO:
            return 0, False
        return self.arch_regs[reg], self.arch_inv[reg]

    def _operand(self, entry, index):
        """Read source ``index`` of ``entry``: (value, inv)."""
        producer = entry.src_producers[index]
        if producer is None:
            return self.reg_read(entry.instr.srcs[index])
        return producer.value, producer.inv

    def _operand_ready(self, entry):
        """All source producers have completed (wakeup counter is zero)."""
        return entry.pending_srcs == 0

    def _mark_done(self, entry):
        """Complete ``entry`` and wake every consumer waiting on it."""
        entry.state = DONE
        consumers = entry.consumers
        if consumers:
            entry.consumers = None
            ready = self._ready
            for consumer in consumers:
                pending = consumer.pending_srcs - 1
                consumer.pending_srcs = pending
                if pending == 0 and not consumer.squashed and \
                        consumer.state == DISPATCHED:
                    _heappush(ready, (consumer.seq, consumer))

    @property
    def transient_window_max(self):
        return self._window_max

    # ------------------------------------------------------------------- step --

    def step(self):
        """Advance one cycle.

        Each stage call is gated on a cheap emptiness check here — with
        cycle skipping active most invocations run only one or two
        stages, and the guards are exactly the stages' own first-line
        early exits hoisted to the caller.
        """
        now = self.cycle
        self._activity = False
        hierarchy = self.hierarchy
        if now >= hierarchy.next_fill:
            hierarchy.apply_completed(now)
        self.fus.new_cycle(now)

        if self.mode == MODE_RUNAHEAD and self.runahead.should_exit(self, now):
            self._exit_runahead(now)

        if not self.rob.empty:
            self._commit(now)
            if self.halted:
                self.stats.cycles = now + 1
                return
        completions = self._completions
        if completions and completions[0][0] <= now:
            self._complete(now)
        if self._ready:
            self._issue(now)
        frontend = self.frontend
        if frontend and frontend[0].ready_cycle <= now:
            self._dispatch(now)
        if not self.fetch_halted and now >= self.fetch_stall_until:
            self._fetch(now)
        self.cycle = now + 1

    def run(self, max_cycles=5_000_000):
        """Run to HALT (or quiescence/ceiling); returns the stats object."""
        step = self.step
        while not self.halted and self.cycle < max_cycles:
            step()
            if not self._activity and not self.halted:
                skip_to = self._next_event()
                if skip_to is None:
                    break                      # quiescent: nothing can happen
                if skip_to > self.cycle:
                    self.cycle = skip_to
        self.stats.cycles = self.cycle
        return self.stats

    def _next_event(self):
        """Earliest future cycle at which anything can change."""
        best = None
        completions = self._completions
        while completions and completions[0][2].squashed:
            _heappop(completions)
            self._squashed_completions -= 1
        if completions:
            best = completions[0][0]
        event = self.hierarchy.next_event()
        if event is not None and (best is None or event < best):
            best = event
        if self.frontend:
            ready_cycle = self.frontend[0].ready_cycle
            if best is None or ready_cycle < best:
                best = ready_cycle
        if not self.fetch_halted and self.fetch_stall_until >= self.cycle:
            # A fetch stall lifting exactly at the current cycle must still
            # be a wake-up source, else a skip jumps over the resume point.
            resume = self.fetch_stall_until
            if resume <= self.cycle:
                resume = self.cycle + 1
            if best is None or resume < best:
                best = resume
        if self.mode == MODE_RUNAHEAD and self.checkpoint is not None:
            stall = self.checkpoint.stalling_completion
            if best is None or stall < best:
                best = stall
        if best is None:
            return None
        floor = self.cycle + 1
        return best if best > floor else floor

    # ----------------------------------------------------------------- commit --

    def _commit(self, now):
        committed = 0
        width = self.config.width
        rob_head = self.rob.head
        while committed < width:
            head = rob_head()
            if head is None:
                break
            if head.state != DONE:
                if self.mode == MODE_NORMAL:
                    # Inline precondition of _maybe_enter_runahead: most
                    # not-done heads are not memory-stalled loads.
                    if head.is_load and head.state == ISSUED and \
                            (head.mem_level == LEVEL_MEM or
                             head.mem_level == LEVEL_PENDING):
                        self._maybe_enter_runahead(head, now)
                        if self.mode == MODE_RUNAHEAD:
                            continue   # head was poisoned; pseudo-retire it
                elif self._poison_stalled_head(head):
                    continue           # runahead never stalls on misses
                break
            if self.mode == MODE_RUNAHEAD:
                self._pseudo_retire(head, now)
                committed += 1
                continue
            self._commit_one(head, now)
            committed += 1
            if self.halted:
                break
        if committed:
            self._activity = True

    def _commit_one(self, head, now):
        instr = head.instr
        if instr.opcode is _HALT:
            self.halted = True
            self._retire_entry(head)
            self.stats.committed += 1
            if self.trace is not None:
                self.trace.emit(now, _EV_COMMIT, head.seq, head.pc)
            return
        if head.is_store and head.mem_addr is not None:
            if instr.opcode is _VSTORE:
                lanes = head.store_value
                self.memory.write_word(head.mem_addr, lanes[0])
                self.memory.write_word(head.mem_addr + WORD_BYTES, lanes[1])
            else:
                self.memory.write_word(head.mem_addr, head.store_value)
            # Write-allocate at commit; latency absorbed by a write buffer.
            self.hierarchy.access_data(head.mem_addr, now)
        dest = instr.dest
        if dest is not None and dest != REG_ZERO:
            self.arch_regs[dest] = head.value
            self.arch_inv[dest] = False
        self._retire_entry(head)
        self.stats.committed += 1
        if self.trace is not None:
            self.trace.emit(now, _EV_COMMIT, head.seq, head.pc)
        # End of a stall episode once the stalling load itself commits.
        if self._stall_base_seq is not None and head.is_load:
            self._stall_base_seq = None

    def _pseudo_retire(self, head, now):
        """Runahead-mode commit: update the checkpointed state, never memory."""
        instr = head.instr
        dest = instr.dest
        if head.is_store:
            if head.mem_addr is not None:
                self.runahead_cache.write(head.mem_addr, head.store_value,
                                          inv=head.inv)
        if dest is not None and dest != REG_ZERO:
            self.arch_regs[dest] = head.value if not head.inv else 0
            self.arch_inv[dest] = head.inv
        self.runahead.on_pseudo_retire(self, head)
        self._retire_entry(head)
        self.stats.pseudo_retired += 1
        self.stats.transient_executed += 1
        if self.trace is not None:
            self.trace.emit(now, _EV_PSEUDO_RETIRE, head.seq, head.pc)

    def _retire_entry(self, head):
        """Pop the head and release its resources."""
        self.rob.pop_head()
        instr = head.instr
        rename = instr.rename_class
        if rename is not None:
            self._rename_free[rename] += 1
        dest = instr.dest
        if dest is not None and self.rat[dest] is head:
            self.rat[dest] = None
        if head.is_load and head in self.lq:
            self.lq.remove(head)
        if head.is_store and head in self.sq:
            self.sq.remove(head)

    def _poison_stalled_head(self, head):
        """Runahead mode: a memory-level load at the head is INV'd and
        pseudo-retired instead of blocking — its miss continues as a
        prefetch (Mutlu'03)."""
        if not (head.is_load and head.state == ISSUED and
                head.mem_level in (LEVEL_MEM, LEVEL_PENDING)):
            return False
        self._mark_done(head)
        head.inv = True
        if self.trace is not None:
            self.trace.emit(self.cycle, _EV_INV, head.seq, head.pc)
        if head.instr.opcode is _RET:
            head.inv = False
            head.actual_target = None
            self.stats.inv_branches += 1
            self.runahead.on_inv_branch(self, head)
        self.stats.runahead_prefetches += 1
        return True

    # -------------------------------------------------------- runahead entry/exit --

    def _maybe_enter_runahead(self, head, now):
        """Check the Fig. 6 trigger: memory-level load stalled at ROB head."""
        if not (head.is_load and head.state == ISSUED and
                head.mem_level in (LEVEL_MEM, LEVEL_PENDING)):
            return
        # Track the transient window for Fig. 10 even without runahead.
        if self._stall_base_seq is None:
            self._stall_base_seq = head.seq
        if not self.runahead.should_enter(self, head):
            return
        self.checkpoint = Checkpoint(
            arch_regs=list(self.arch_regs),
            branch_snapshot=self.branch_unit.snapshot(),
            stalling_pc=head.pc,
            stalling_line=self.hierarchy.line_of(head.mem_addr or 0),
            stalling_completion=head.completion,
            entry_cycle=now,
        )
        self.mode = MODE_RUNAHEAD
        self.stats.runahead_episodes += 1
        if self.trace is not None:
            self.trace.emit(now, _EV_RA_ENTER, head.seq, head.pc)
        # Poison the stalling load: its result is INV, and it pseudo-retires
        # immediately, converting the blocked window into a running one.
        head.inv = True
        self._mark_done(head)
        self.runahead.on_enter(self)
        if head.instr.opcode is _RET:
            # The stack-pointer update is valid; only the return target is
            # unknown, leaving the RSB prediction unresolvable (Fig. 4c).
            head.inv = False
            head.actual_target = None
            self.stats.inv_branches += 1
            self.runahead.on_inv_branch(self, head)

    def _exit_runahead(self, now):
        checkpoint = self.checkpoint
        self.runahead.on_exit(self)
        victims = self.rob.clear()
        for victim in victims:
            if victim.state != DISPATCHED:
                self.stats.transient_executed += 1
        self.stats.squashed += len(victims)
        if self.trace is not None:
            if victims:
                self.trace.emit(now, _EV_SQUASH, len(victims),
                                checkpoint.stalling_pc)
            self.trace.emit(now, _EV_RA_EXIT,
                            now - checkpoint.entry_cycle,
                            checkpoint.stalling_pc)
        self.iq.clear()
        self.lq.clear()
        self.sq.clear()
        self.frontend.clear()
        self._completions = []
        self._squashed_completions = 0
        self._ready = []
        self.arch_regs = list(checkpoint.arch_regs)
        self.arch_inv = [False] * NUM_ARCH_REGS
        self.rat = [None] * NUM_ARCH_REGS
        self._rename_free = {"int": self.config.rename_int,
                             "fp": self.config.rename_fp,
                             "vec": self.config.rename_vec}
        self.branch_unit.restore(checkpoint.branch_snapshot)
        self.runahead_cache.clear()
        self.fetch_pc = checkpoint.stalling_pc
        self.fetch_halted = False
        self.fetch_stall_until = now + self.config.runahead.exit_overhead
        self._last_inst_line = None
        self.mode = MODE_NORMAL
        self.checkpoint = None
        self.stats.runahead_cycles += now - checkpoint.entry_cycle
        self._stall_base_seq = None
        self._activity = True

    def extend_stall(self, completion):
        """Push the runahead exit later (stalling line was flushed in
        flight and must be re-fetched from memory — Fig. 10 case ③)."""
        if self.checkpoint is not None and \
                completion > self.checkpoint.stalling_completion:
            self.checkpoint.stalling_completion = completion

    # ---------------------------------------------------------------- complete --

    def _complete(self, now):
        completions = self._completions
        while completions and completions[0][0] <= now:
            entry = _heappop(completions)[2]
            if entry.squashed:
                self._squashed_completions -= 1
                continue
            if entry.state != ISSUED:
                continue
            self._mark_done(entry)
            self._activity = True
            if entry.is_branch and not entry.resolved:
                self._resolve_branch(entry, now)
                if self.halted:
                    return

    def _resolve_branch(self, entry, now):
        instr = entry.instr
        unresolvable = entry.inv or entry.actual_target is None and \
            (instr.opcode is _RET or instr.opcode is _JR)
        if self.mode == MODE_RUNAHEAD and unresolvable:
            # The SPECRUN vulnerability: an INV-source branch is predicted
            # but never resolved — the prediction stands for the whole
            # runahead interval (paper §2.1, §4.2 step 3).  Mitigations
            # may override on_inv_branch to skip the branch instead.
            self.stats.inv_branches += 1
            entry.resolved = False
            self.runahead.on_inv_branch(self, entry)
            return
        if entry.inv:
            # INV branch outside runahead mode cannot happen (INV bits only
            # exist in runahead mode).
            raise SimulationError("INV branch in normal mode")
        entry.resolved = True
        train = self.mode == MODE_NORMAL or \
            self.config.runahead.train_in_runahead
        mispredicted = self.branch_unit.resolve(
            entry.pc, instr, entry.actual_taken, entry.actual_target,
            entry.prediction, train=train)
        self.runahead.on_branch_resolved(self, entry, mispredicted)
        if not mispredicted:
            return
        self.stats.branch_mispredicts += 1
        if self.trace is not None:
            self.trace.emit(now, _EV_MISPREDICT, entry.seq, entry.pc)
        self._recover_from_branch(entry, now)

    def _squash_younger(self, entry):
        """Remove everything younger than ``entry`` and clean bookkeeping."""
        victims = self.rob.squash_younger(entry.seq)
        squashed_in_heap = 0
        for victim in victims:
            state = victim.state
            if state != DISPATCHED:
                self.stats.transient_executed += 1
                if state == ISSUED:
                    # Its completion record is still in the heap; it will
                    # be skipped lazily or compacted away below.
                    squashed_in_heap += 1
            rename = victim.instr.rename_class
            if rename is not None:
                self._rename_free[rename] += 1
        self.stats.squashed += len(victims)
        if victims and self.trace is not None:
            self.trace.emit(self.cycle, _EV_SQUASH, len(victims),
                            entry.pc)
        if victims:
            self.iq = [e for e in self.iq if not e.squashed]
            self.lq = [e for e in self.lq if not e.squashed]
            self.sq = [e for e in self.sq if not e.squashed]
            self._squashed_completions += squashed_in_heap
            self._compact_completions()
        # Rebuild the alias table from the surviving entries.
        self.rat = [None] * NUM_ARCH_REGS
        rat = self.rat
        for survivor in self.rob:
            dest = survivor.instr.dest
            if dest is not None and dest != REG_ZERO:
                rat[dest] = survivor
        self.frontend.clear()

    def _compact_completions(self):
        """Drop squashed records once they dominate the completion heap.

        Long misprediction storms can fill ``_completions`` with dead
        entries faster than ``_complete`` pops them; compacting at the
        half-full threshold keeps every heap operation O(log live)
        amortized instead of O(log total-ever-squashed).
        """
        if self._squashed_completions * 2 > len(self._completions):
            self._completions = [record for record in self._completions
                                 if not record[2].squashed]
            heapq.heapify(self._completions)
            self._squashed_completions = 0

    def _recover_from_branch(self, entry, now):
        """Squash the wrong path and redirect fetch."""
        self.branch_unit.restore(entry.prediction.snapshot)
        self.branch_unit.reapply(entry.pc, entry.instr, entry.actual_taken)
        self._squash_younger(entry)
        target = entry.actual_target if entry.actual_taken \
            else entry.pc + INSTR_BYTES
        self.fetch_pc = target
        self.fetch_halted = False
        self.fetch_stall_until = now + 1
        self._last_inst_line = None
        self._activity = True

    def force_branch_outcome(self, entry, taken, target):
        """Mitigation hook: steer an unresolvable branch to a fixed
        outcome (squash its speculative path and redirect fetch)."""
        entry.actual_taken = taken
        entry.actual_target = target
        entry.resolved = True
        self._recover_from_branch(entry, self.cycle)

    def stop_runahead_fetch(self, entry=None):
        """Mitigation hook: kill the speculative path of an unresolvable
        branch and stop fetching for the rest of the runahead interval
        (exit resets fetch state)."""
        if entry is not None:
            self.branch_unit.restore(entry.prediction.snapshot)
            self._squash_younger(entry)
        self.fetch_halted = True

    # ------------------------------------------------------------------- issue --

    def _issue(self, now):
        """Issue from the wakeup-driven ready heap, oldest first.

        Entries land in ``_ready`` exactly once — at dispatch when their
        operands are already available, or in :meth:`_mark_done` when
        their last producer completes.  Entries that lose FU arbitration
        are deferred and re-queued for the next cycle, preserving the
        seq-order retry semantics of the scan this replaced.
        """
        ready = self._ready
        if not ready:
            return
        issued = 0
        width = self.config.issue_width
        stats = self.stats
        trace = self.trace
        fus = self.fus
        normal_mode = self.mode == MODE_NORMAL
        deferred = None
        while ready and issued < width:
            record = _heappop(ready)
            entry = record[1]
            if entry.squashed or entry.state != DISPATCHED:
                continue
            if normal_mode and not fus.can_issue(entry.instr.fu):
                # Cheap FU pre-check: every issue sub-path starts with
                # exactly this test, so losing arbitration here is the
                # same outcome for a fraction of the work.  (Runahead
                # mode must not pre-check — INV-source instructions
                # issue without consuming any unit.)
                result = False
            else:
                result = self._try_issue(entry, now)
            if result is _WAIT:
                continue    # parked on a store's wakeup list
            if result is False:
                if deferred is None:
                    deferred = [record]
                else:
                    deferred.append(record)
                continue
            self.iq.remove(entry)
            entry.state = ISSUED
            entry.issue_cycle = now
            _heappush(self._completions,
                      (entry.completion, entry.seq, entry))
            issued += 1
            stats.issued += 1
            if trace is not None:
                trace.emit(now, _EV_ISSUE, entry.seq, entry.pc)
            self._activity = True
            if entry.is_store and entry.store_waiters is not None:
                # This store's address is now known: re-queue the loads
                # that were parked behind it.  Their seqs are larger, so
                # they are popped later in this very loop — preserving
                # the same-cycle, seq-ordered retry the scan used to do.
                waiters = entry.store_waiters
                entry.store_waiters = None
                for waiter in waiters:
                    if not waiter.squashed and waiter.state == DISPATCHED:
                        _heappush(ready, (waiter.seq, waiter))
        if deferred is not None:
            for record in deferred:
                _heappush(ready, record)

    def _try_issue(self, entry, now):
        """Execute ``entry`` if resources allow; sets value/completion."""
        instr = entry.instr
        fu = instr.fu

        # INV-source instructions consume no functional unit (they are
        # dropped into a 1-cycle INV move, per Mutlu'03).
        if self.mode == MODE_RUNAHEAD and not entry.filtered:
            arch_inv = self.arch_inv
            srcs = instr.srcs
            for index, producer in enumerate(entry.src_producers):
                if (producer.inv if producer is not None
                        else arch_inv[srcs[index]]):
                    return self._issue_inv(entry, now)

        if fu is _FU_MEM:
            return self._issue_mem(entry, now)
        if fu is _FU_BRANCH:
            return self._issue_branch(entry, now)

        fus = self.fus
        if not fus.can_issue(fu):
            return False
        latency = fus.issue(fu)
        entry.completion = now + latency
        entry.value = self._execute_alu(entry)
        return True

    def _issue_inv(self, entry, now):
        """Poisoned instruction: propagate INV in one cycle, no FU."""
        entry.inv = True
        self.stats.inv_instructions += 1
        if self.trace is not None:
            self.trace.emit(now, _EV_INV, entry.seq, entry.pc)
        instr = entry.instr
        opcode = instr.opcode
        if opcode is _CALL or opcode is _RET:
            entry.value = 0
            entry.actual_target = None
        elif instr.store:
            entry.mem_addr = None
        entry.value = entry.value if entry.value is not None else 0
        entry.completion = now + 1
        return True

    def _execute_alu(self, entry):
        """Evaluate a non-memory, non-branch instruction."""
        instr = entry.instr
        alu = ALU_EVAL[instr.op]
        if alu is not None:
            # Integer ALU / MUL / DIV family — the common case, table-
            # dispatched on the integer opcode.
            n_srcs = instr.n_srcs
            a = _as_int(self._operand(entry, 0)[0]) if n_srcs else 0
            b = _as_int(self._operand(entry, 1)[0]) if n_srcs > 1 else None
            return alu(a, b, instr.imm)
        opcode = instr.opcode
        if opcode is _NOP or opcode is _FENCE or opcode is _HALT:
            return None
        if opcode is _RDTSC:
            return self.cycle
        values = [self._operand(entry, i)[0]
                  for i in range(instr.n_srcs)]
        if opcode in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV):
            a, b = float(values[0]), float(values[1])
            if opcode is Opcode.FADD:
                return a + b
            if opcode is Opcode.FSUB:
                return a - b
            if opcode is Opcode.FMUL:
                return a * b
            return a / b if b else float("inf")
        if opcode is Opcode.FCVT:
            return float(to_signed64(_as_int(values[0])))
        if opcode is Opcode.FMOV:
            return float(values[0])
        if opcode in (Opcode.VADD, Opcode.VMUL):
            a, b = _as_vec(values[0]), _as_vec(values[1])
            if opcode is Opcode.VADD:
                return (to_unsigned64(a[0] + b[0]),
                        to_unsigned64(a[1] + b[1]))
            return (to_unsigned64(a[0] * b[0]), to_unsigned64(a[1] * b[1]))
        if opcode is Opcode.VSPLAT:
            value = _as_int(values[0])
            return (value, value)
        if opcode is Opcode.VEXTRACT:
            return _as_vec(values[0])[instr.imm & 1]
        raise SimulationError(f"unexpected ALU opcode: {opcode!r}")

    # -- branches -------------------------------------------------------------------

    def _issue_branch(self, entry, now):
        instr = entry.instr
        opcode = instr.opcode
        if not self.fus.can_issue(_FU_BRANCH):
            return False

        if opcode is _CALL:
            return self._issue_call(entry, now)
        if opcode is _RET:
            return self._issue_ret(entry, now)

        self.fus.issue(_FU_BRANCH)
        if instr.cond_branch:
            a = _as_int(self._operand(entry, 0)[0])
            b = _as_int(self._operand(entry, 1)[0])
            entry.actual_taken = eval_branch(opcode, a, b)
            entry.actual_target = instr.target if entry.actual_taken \
                else entry.pc + INSTR_BYTES
        elif opcode is _JMP:
            entry.actual_taken = True
            entry.actual_target = instr.target
        elif opcode is _JR:
            entry.actual_taken = True
            entry.actual_target = _as_int(self._operand(entry, 0)[0]) & ~3
        entry.completion = now + 1
        entry.value = None
        return True

    def _issue_call(self, entry, now):
        """call = push return address (store) + direct jump."""
        blocker = self._blocking_store(entry)
        if blocker is not None:
            return self._wait_on_store(entry, blocker)
        self.fus.issue(_FU_BRANCH)
        sp, _ = self._operand(entry, 0)
        new_sp = to_unsigned64(_as_int(sp) - WORD_BYTES)
        entry.mem_addr = new_sp & ~(WORD_BYTES - 1)
        entry.store_value = entry.pc + INSTR_BYTES
        entry.value = new_sp
        entry.actual_taken = True
        entry.actual_target = entry.instr.target
        entry.completion = now + 1
        return True

    def _issue_ret(self, entry, now):
        """ret = pop return address (load) + indirect jump."""
        sp, _ = self._operand(entry, 0)
        addr = _as_int(sp) & ~(WORD_BYTES - 1)
        outcome = self._load_value(entry, addr, now, as_type="int")
        if outcome is None:
            return False
        if outcome is _WAIT:
            return _WAIT
        value, completion, poisoned = outcome
        entry.value = to_unsigned64(_as_int(sp) + WORD_BYTES)
        entry.actual_taken = True
        entry.actual_target = None if poisoned else value & ~3
        entry.completion = completion
        return True

    # -- memory ------------------------------------------------------------------------

    def _issue_mem(self, entry, now):
        instr = entry.instr
        opcode = instr.opcode
        fus = self.fus
        if not fus.can_issue(_FU_MEM):
            return False

        if opcode is _CLFLUSH:
            base, _ = self._operand(entry, 0)
            addr = to_unsigned64(_as_int(base) + instr.imm)
            fus.issue(_FU_MEM)
            self.hierarchy.flush_line(addr)
            if self.mode == MODE_RUNAHEAD and self.checkpoint is not None \
                    and self.hierarchy.line_of(addr) == \
                    self.checkpoint.stalling_line:
                # Flushing the stalling line drops its in-flight fill; the
                # data must be re-fetched, prolonging runahead (Fig. 10 ③).
                refetch = self.hierarchy.access_data(addr, now, prefetch=True)
                self.extend_stall(refetch.completion)
            entry.completion = now + 1
            return True

        if instr.store:
            if len(self.sq) > self.config.sq_size:
                raise SimulationError("store queue overflow")
            value, _ = self._operand(entry, 0)
            base, _ = self._operand(entry, 1)
            addr = to_unsigned64(_as_int(base) + instr.imm) & \
                ~(WORD_BYTES - 1)
            fus.issue(_FU_MEM)
            entry.mem_addr = addr
            entry.store_value = _typed_store_value(opcode, value)
            entry.completion = now + 1
            return True

        # Loads.
        base, _ = self._operand(entry, 0)
        addr = to_unsigned64(_as_int(base) + instr.imm) & ~(WORD_BYTES - 1)
        outcome = self._load_value(entry, addr, now, as_type=instr.load_type)
        if outcome is None:
            return False
        if outcome is _WAIT:
            return _WAIT
        value, completion, poisoned = outcome
        entry.value = value
        entry.inv = entry.inv or poisoned
        entry.completion = completion
        return True

    def _blocking_store(self, entry):
        """Oldest older store whose address is still unknown, or None.

        Conservative disambiguation: a load (or call) may not issue
        until every older store has computed its address.
        """
        seq = entry.seq
        for store in self.sq:
            if store.seq >= seq:
                break
            if store.state == DISPATCHED:
                return store
        return None

    def _wait_on_store(self, entry, blocker):
        """Park ``entry`` on ``blocker``'s wakeup list; returns ``_WAIT``.

        The entry leaves the ready heap entirely — it is re-queued the
        moment the blocking store issues (same cycle, in seq order)
        instead of being re-attempted every cycle.
        """
        if blocker.store_waiters is None:
            blocker.store_waiters = [entry]
        else:
            blocker.store_waiters.append(entry)
        return _WAIT

    @staticmethod
    def _store_covers(store, addr):
        """True if ``store`` writes the word at ``addr``."""
        mem_addr = store.mem_addr
        if mem_addr is None:
            return False
        if store.instr.opcode is _VSTORE:
            return addr == mem_addr or addr == mem_addr + WORD_BYTES
        return addr == mem_addr

    def _forward_from_store(self, entry, addr):
        """Youngest older store covering the same word, if any."""
        best = None
        seq = entry.seq
        for store in self.sq:
            if store.seq >= seq:
                break
            if self._store_covers(store, addr):
                best = store
        return best

    def _forwarded_value(self, store, addr, as_type):
        value = store.store_value
        if store.instr.opcode is _VSTORE:
            value = value[1] if addr == store.mem_addr + WORD_BYTES \
                else value[0]
        return _typed_load_value(as_type, value)

    def _load_value(self, entry, addr, now, as_type):
        """Common load path (loads and ret).

        Returns ``(value, completion, poisoned)`` or None if the load
        cannot issue yet.  Claims the MEM port on success.
        """
        fus = self.fus
        if not fus.can_issue(_FU_MEM):
            return None
        blocker = self._blocking_store(entry)
        if blocker is not None:
            return self._wait_on_store(entry, blocker)
        entry.mem_addr = addr

        if as_type == "vec":
            # A vector load overlapping any in-flight store waits for the
            # store to drain (conservative; avoids partial forwarding).
            seq = entry.seq
            for store in self.sq:
                if store.seq >= seq:
                    break
                if self._store_covers(store, addr) or \
                        self._store_covers(store, addr + WORD_BYTES):
                    return None
        else:
            store = self._forward_from_store(entry, addr)
            if store is not None:
                fus.issue(_FU_MEM)
                entry.mem_level = LEVEL_FORWARD
                if store.inv:
                    return 0, now + 1, True
                return self._forwarded_value(store, addr, as_type), \
                    now + 1, False

        if self.mode == MODE_RUNAHEAD:
            cached = self.runahead_cache.read(addr)
            if cached is not None:
                fus.issue(_FU_MEM)
                entry.mem_level = LEVEL_RUNAHEAD
                value, inv = cached
                latency = self.config.hierarchy.l1d.latency
                if inv:
                    return 0, now + latency, True
                return _typed_load_value(as_type, value), now + latency, False
            override = self.runahead.runahead_load_override(self, entry,
                                                            addr, now)
            if override is not None:
                fus.issue(_FU_MEM)
                entry.mem_level = LEVEL_SL
                value = self._read_memory_word(addr, as_type)
                return value, now + override, False

        if self.mode == MODE_NORMAL:
            override = self.runahead.normal_load_override(self, entry, addr,
                                                          now)
            if override is not None:
                if override is BLOCKED:
                    return None
                fus.issue(_FU_MEM)
                entry.mem_level = LEVEL_SL
                value = self._read_memory_word(addr, as_type)
                return value, now + override, False

        fus.issue(_FU_MEM)
        fill = True
        if self.mode == MODE_RUNAHEAD:
            fill = self.runahead.runahead_load_fill(self, entry)
        result = self.hierarchy.access_data(
            addr, now, fill=fill, prefetch=self.mode == MODE_RUNAHEAD)
        entry.mem_level = result.level

        if self.mode == MODE_RUNAHEAD:
            self.runahead.on_runahead_load(self, entry, result)
            if result.is_memory_level:
                # Mutlu'03: runahead loads that miss to memory launch the
                # prefetch but return INV without waiting.
                self.stats.runahead_prefetches += 1
                latency = self.config.hierarchy.l1d.latency
                return 0, now + latency, True
        else:
            self.runahead.on_normal_load(self, entry, result)

        value = self._read_memory_word(addr, as_type)
        return value, now + result.latency, False

    def _read_memory_word(self, addr, as_type):
        word = self.memory.read_word(addr)
        if as_type == "vec":
            second = self.memory.read_word(addr + WORD_BYTES)
            return (_as_int(word), _as_int(second))
        if as_type == "float":
            return float(word)
        return _as_int(word)

    # ---------------------------------------------------------------- dispatch --

    def _dispatch(self, now):
        frontend = self.frontend
        if not frontend or frontend[0].ready_cycle > now:
            return
        dispatched = 0
        config = self.config
        width = config.width
        lq_size = config.lq_size
        sq_size = config.sq_size
        iq_size = config.iq_size
        rob = self.rob
        rob_capacity = rob.capacity
        lq = self.lq
        sq = self.sq
        iq = self.iq
        rat = self.rat
        rename_free = self._rename_free
        stats = self.stats
        trace = self.trace
        runahead_mode = self.mode == MODE_RUNAHEAD
        filtering = runahead_mode and not self._filter_is_default
        while dispatched < width and frontend:
            slot = frontend[0]
            if slot.ready_cycle > now:
                break
            instr = slot.instr
            opcode = instr.opcode

            if opcode is _FENCE and (len(rob) != 0 or runahead_mode):
                # A fence waits for all older loads — including, in
                # runahead mode, the stalling load itself, which by
                # definition completes only at exit: runahead cannot
                # pseudo-retire past a serialization point.
                stats.fence_stalls += 1
                break
            if len(rob) >= rob_capacity:
                break
            rename = instr.rename_class
            if rename is not None and rename_free[rename] <= 0:
                break
            is_load = instr.pipe_load
            is_store = instr.pipe_store
            if is_load and len(lq) >= lq_size:
                break
            if is_store and len(sq) >= sq_size:
                break
            immediate = instr.immediate
            if not immediate and len(iq) >= iq_size:
                break

            frontend.popleft()
            self.seq += 1
            entry = RobEntry(self.seq, slot.pc, instr)
            entry.prediction = slot.prediction
            # Wakeup registration: count in-flight producers and hook
            # this entry onto their wakeup lists.
            pending = 0
            srcs = instr.srcs
            if srcs:
                producers = tuple(rat[s] for s in srcs)
                entry.src_producers = producers
                for producer in producers:
                    if producer is not None and producer.state != DONE:
                        pending += 1
                        if producer.consumers is None:
                            producer.consumers = [entry]
                        else:
                            producer.consumers.append(entry)
                entry.pending_srcs = pending
            else:
                entry.src_producers = ()
            entry.is_fence = opcode is _FENCE
            dest = instr.dest
            if dest is not None and dest != REG_ZERO:
                rat[dest] = entry
            if rename is not None:
                rename_free[rename] -= 1
            rob.push(entry)
            stats.dispatched += 1
            dispatched += 1
            if trace is not None:
                trace.emit(now, _EV_DISPATCH, entry.seq, slot.pc)
            self._activity = True

            if self._stall_base_seq is not None:
                depth = entry.seq - self._stall_base_seq
                if depth > self._window_max:
                    self._window_max = depth

            if immediate:
                entry.state = DONE
                entry.value = None
                continue
            if filtering and \
                    not self.runahead.filter_dispatch(self, instr, slot.pc):
                # Precise runahead: outside the stall slice — complete
                # immediately with an INV result, using no backend resources.
                entry.filtered = True
                entry.inv = True
                entry.value = 0
                entry.state = ISSUED
                entry.completion = now + 1
                _heappush(self._completions,
                          (entry.completion, entry.seq, entry))
                stats.filtered_instructions += 1
                continue
            iq.append(entry)
            if pending == 0:
                _heappush(self._ready, (entry.seq, entry))
            if is_load:
                lq.append(entry)
            if is_store:
                sq.append(entry)

    # ------------------------------------------------------------------- fetch --

    def _fetch(self, now):
        if self.fetch_halted or now < self.fetch_stall_until:
            return
        config = self.config
        fetch_queue = config.fetch_queue
        if len(self.frontend) >= fetch_queue:
            return
        fetched = 0
        width = config.width
        frontend_depth = config.frontend_depth
        frontend = self.frontend
        program_fetch = self.program.fetch
        hierarchy = self.hierarchy
        stats = self.stats
        trace = self.trace
        while fetched < width and len(frontend) < fetch_queue:
            pc = self.fetch_pc
            instr = program_fetch(pc)
            if instr is None:
                self.fetch_halted = True
                break
            line = hierarchy.line_of(pc)
            if line != self._last_inst_line:
                result = hierarchy.access_inst(pc, now)
                if result.level != LEVEL_L1:
                    self.fetch_stall_until = result.completion
                    break
                self._last_inst_line = line
            prediction = None
            if instr.branch:
                prediction = self.branch_unit.predict(pc, instr)
            frontend.append(
                _Fetched(pc, instr, prediction, now + frontend_depth))
            stats.fetched += 1
            fetched += 1
            if trace is not None:
                trace.emit(now, _EV_FETCH, pc)
            self._activity = True
            if instr.opcode is _HALT:
                self.fetch_halted = True
                break
            if prediction is not None and prediction.taken:
                self.fetch_pc = prediction.target
                self._last_inst_line = None
                break
            self.fetch_pc = pc + INSTR_BYTES

    # ------------------------------------------------------------------ results --

    def architectural_state(self):
        """Return (registers, memory snapshot) for differential testing."""
        return list(self.arch_regs), self.memory.snapshot()


#: Sentinel returned by ``normal_load_override`` to stall the load (the
#: SL cache's "wait for branch resolution" in Algorithm 1).
BLOCKED = object()


def _as_int(value):
    if type(value) is int:
        return value & _MASK64
    if isinstance(value, tuple):
        return to_unsigned64(value[0])
    return to_unsigned64(int(value))


def _as_vec(value):
    if isinstance(value, tuple):
        return value
    return (_as_int(value), _as_int(value))


def _typed_store_value(opcode, value):
    if opcode is _FSTORE:
        return float(value)
    if opcode is _VSTORE:
        return value if isinstance(value, tuple) else (_as_int(value), 0)
    return _as_int(value)


def _typed_load_value(as_type, value):
    if as_type == "float":
        return float(value) if not isinstance(value, tuple) else \
            float(value[0])
    if as_type == "vec":
        return value if isinstance(value, tuple) else (_as_int(value), 0)
    return _as_int(value)


def run_on_core(program, memory_image=None, config=None, runahead=None,
                initial_sp=None, max_cycles=5_000_000):
    """Build a core, run the program, return the core (stats inside)."""
    core = Core(program, memory_image=memory_image, config=config,
                runahead=runahead, initial_sp=initial_sp)
    core.run(max_cycles=max_cycles)
    return core

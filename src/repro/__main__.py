"""``python -m repro`` — run paper experiments from the command line.

Subcommands
-----------
``repro sweep <preset>``
    Build a paper-figure sweep, execute it (sharded, cached), print the
    rendered report.  ``--quick`` runs the reduced CI grid, ``--out``
    writes the canonical JSON, ``--list`` enumerates presets.
``repro run <kind> [key=value ...]``
    Execute one ad-hoc trial (``attack``, ``ipc``, ``window``, ``run``,
    ``taint``, ``extract``, ``verify``) and print its result record as
    JSON.
``repro verify <target>``
    Static speculative-leak check of a gadget program
    (:mod:`repro.verify`): explore its speculation and runahead windows
    under a defense model (``--defense``) and report every
    secret-tainted load address.  ``--windows`` narrows the exploration,
    ``--spec-depth``/``--runahead-len`` bound the windows,
    ``--cross-check`` also runs the target on the cycle simulator and
    holds the differential contract, ``--list`` enumerates registered
    targets (``gen:<family>:<seed>`` names are generated on the fly).
    Exit status: 0 clean, 1 leak reports, 2 cross-check disagreement.
``repro attack``
    End-to-end covert-channel secret extraction: pick a receiver
    strategy, noise intensity and trial count, and read a multi-byte
    secret out of the simulated machine (``--secret``, ``--receiver``,
    ``--trials``, ``--jitter``/``--evict-rate``/``--pollute-rate``).
    ``--cores N`` moves the receiver to another core of a shared-L3
    multi-core topology; ``--corunner <workload>`` (with ``--cores 3``
    or ``--smt``) runs a real interfering instruction stream.
    ``--corunner-trace <trace>`` puts a trace-replay workload on a
    dedicated co-runner core (implies ``--cores 3``);
    ``--victim-trace <trace>`` runs it as an SMT thread sharing the
    victim's private caches — trace pressure inside the victim's slot.
``repro trace record|info``
    Work with trace-driven workloads (:mod:`repro.trace`):
    ``record <workload>`` captures an access trace from any registry
    workload through the reference interpreter and writes it to a
    ``.trace`` file; ``info <name-or-file>`` prints event counts,
    footprint, set coverage and replay size of a trace file, a
    synthetic family (``mcf``/``stream``/``gcc``/``zipf``) or a
    ``trace-*`` workload.  Recorded files run anywhere a workload name
    is accepted via ``trace:<path>``.
``repro campaign run|resume|status|serve|coordinate|worker``
    Journaled, resumable campaigns (:mod:`repro.campaign`):
    ``run <preset...>`` lays down a self-contained campaign directory
    (manifest + write-ahead journal + its own result store) and
    executes every trial on a work-stealing worker pool with bounded
    retries and optional per-trial ``--timeout``; ``resume <dir>``
    completes an interrupted campaign — skipping everything already
    cached — with final results byte-identical to an uninterrupted
    run; ``status <dir>`` reports live progress (trials done/cached/
    retried, cache hit rate, trials/s, ETA, hosts/leases) from the
    journal only; ``serve <dir>`` exposes the same read-only view
    over HTTP.  ``coordinate <dir>`` shards the campaign across
    hosts: it owns the directory and hands trials out over HTTP
    under journaled, heartbeat-renewed leases (expired leases are
    re-enqueued with the usual bounded retries); ``worker <url>``
    pulls and computes trials from a coordinator on any number of
    hosts.
``repro report <file.json | preset>``
    Render a previously saved sweep result, or re-render a preset from
    the cache without recomputing anything that is already stored.
``repro cache [--clear]``
    Show (or empty) the on-disk result cache.
``repro bench-perf``
    Measure simulator throughput (simulated cycles/second) on the
    core-throughput scenarios plus the Fig. 7 quick sweep wall time,
    write ``BENCH_core.json``, and optionally compare against a
    committed baseline (``--compare``) with a relative tolerance.

Examples::

    python -m repro sweep fig7 --workers 4
    python -m repro run attack variant=pht runahead=original
    python -m repro run window runahead=original config.rob_size=64
    python -m repro report fig7
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from .harness import presets as preset_registry
from .harness.cache import ResultCache, resolve_cache
from .harness.executor import (EXECUTORS, ProcessPoolExecutor,
                               SerialExecutor, SweepResult,
                               default_workers, make_executor)
from .harness.runner import TrialError
from .harness.spec import Sweep, Trial


def _executor(workers=None, executor=None):
    """CLI worker-count handling → an Executor (satellite of the
    Executor-protocol redesign: the CLI drives executors directly).

    An explicit ``--executor`` name (or ``$REPRO_EXECUTOR``) wins; the
    historical workers-based pick stays the default.
    """
    workers = default_workers() if workers is None else max(1, workers)
    name = executor or os.environ.get("REPRO_EXECUTOR") or None
    if name:
        return make_executor(name, workers=workers)
    if workers == 1:
        return SerialExecutor()
    return ProcessPoolExecutor(workers=workers)


def _parse_value(text: str) -> Any:
    """Best-effort literal parsing: int, float, bool, null, else str."""
    try:
        return json.loads(text)
    except ValueError:
        return text


def _parse_assignments(pairs: List[str]) -> Dict[str, Any]:
    """Turn ``a=1 config.rob_size=64`` into a nested params dict."""
    params: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"expected key=value, got {pair!r}")
        key, _, raw = pair.partition("=")
        target = params
        parts = key.split(".")
        for part in parts[:-1]:
            target = target.setdefault(part, {})
            if not isinstance(target, dict):
                raise SystemExit(f"cannot nest under scalar key {part!r}")
        target[parts[-1]] = _parse_value(raw)
    return params


def _cache_arg(args) -> Any:
    if getattr(args, "no_cache", False):
        return None
    if getattr(args, "cache_dir", None):
        return args.cache_dir
    return "auto"


def _cmd_sweep(args) -> int:
    if args.list or not args.preset:
        for name in sorted(preset_registry.PRESETS):
            preset = preset_registry.PRESETS[name]
            print(f"{name:10s} {preset.title}")
        return 0
    preset = preset_registry.get(args.preset)
    sweep = preset.build(quick=args.quick)
    progress = None if args.json else (lambda line: print(line,
                                                          file=sys.stderr))
    result = _executor(args.workers, executor=args.executor).execute(
        sweep, cache=_cache_arg(args), force=args.force,
        progress=progress)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(result.to_json())
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(result.to_json())
    else:
        print(f"== {preset.title} ==")
        print(preset.render(result))
        print()
        print(result.describe())
    return 0


def _cmd_run(args) -> int:
    params = _parse_assignments(args.params)
    trial = Trial(kind=args.kind, params=params)
    cache = resolve_cache(_cache_arg(args))
    result: Optional[Dict[str, Any]] = None
    if cache is not None and not args.force:
        result = cache.get(trial)
    cached = result is not None
    if result is None:
        from .harness.runner import run_trial
        result = run_trial(trial)
        if cache is not None:
            cache.put(trial, result)
    record = {"trial": trial.to_dict(), "cached": cached, "result": result}
    print(json.dumps(record, sort_keys=True, indent=2))
    return 0


def _cmd_attack(args) -> int:
    from .analysis.report import format_table

    if (args.corunner_trace or args.victim_trace) and args.corunner:
        print("error: use either --corunner or one of "
              "--corunner-trace/--victim-trace", file=sys.stderr)
        return 2
    if args.corunner_trace and args.victim_trace:
        print("error: --corunner-trace and --victim-trace are mutually "
              "exclusive (dedicated core vs SMT thread)", file=sys.stderr)
        return 2
    from .trace import trace_workload_name
    if args.corunner_trace:
        args.corunner = trace_workload_name(args.corunner_trace)
        args.cores = max(args.cores, 3)
    elif args.victim_trace:
        args.corunner = trace_workload_name(args.victim_trace)
        args.smt = True

    noise = {"jitter": args.jitter, "evict_rate": args.evict_rate,
             "pollute_rate": args.pollute_rate}
    if args.no_noise or not any(noise.values()):
        noise = None
    params: Dict[str, Any] = {
        "variant": args.variant,
        "receiver": args.receiver,
        "secret": args.secret,
        "trials": args.trials,
        "runahead": args.runahead,
        "seed": args.seed,
    }
    if noise:
        params["noise"] = noise
    # Topology keys enter the trial spec only when non-default, so
    # single-core invocations keep their historical cache identity.
    topology: Dict[str, Any] = {}
    if args.cores != 1:
        topology["cores"] = args.cores
    if args.corunner:
        topology["corunner"] = args.corunner
    if args.smt:
        topology["smt"] = True
    if args.corunner_runahead != "none":
        topology["corunner_runahead"] = args.corunner_runahead
    if topology:
        from .multicore.scenario import Topology
        try:
            Topology.from_params(dict(topology, cores=args.cores))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        params.update(topology)
    trial = Trial(kind="extract", params=params)
    cache = resolve_cache(_cache_arg(args))
    result: Optional[Dict[str, Any]] = None
    if cache is not None and not args.force:
        result = cache.get(trial)
    cached = result is not None
    if result is None:
        from .harness.runner import run_trial
        result = run_trial(trial)
        if cache is not None:
            cache.put(trial, result)
    if args.json:
        print(json.dumps({"trial": trial.to_dict(), "cached": cached,
                          "result": result}, sort_keys=True, indent=2))
    else:
        from .channel.extract import render_byte_text
        recovered = render_byte_text(result["recovered"])
        rows = []
        for i, planted in enumerate(result["secret"]):
            got = result["recovered"][i]
            rows.append((
                i, planted, "-" if got is None else got,
                "ok" if got == planted else "MISS",
                f"{result['confidences'][i]:.2f}",
                result["trials_to_recover"][i] or "-"))
        print(f"== covert-channel extraction "
              f"[{args.variant} / {args.receiver}] ==")
        print(format_table(
            ["byte", "planted", "recovered", "", "confidence",
             "trials-to-recover"], rows))
        print()
        if result.get("topology"):
            topo = result["topology"]
            placement = f"{topo['cores']} core(s)"
            if topo.get("corunner"):
                placement += (f", {'SMT' if topo.get('smt') else 'cross-core'}"
                              f" co-runner: {topo['corunner']}")
            print(f"topology       : {placement}")
        print(f"recovered      : {recovered!r}")
        print(f"success rate   : {result['success_rate']:.2f} "
              f"({result['bits_recovered']}/{result['bits_attempted']} "
              f"bits)")
        print(f"noise          : {noise or 'none'} | trials: "
              f"{args.trials} | seed: {args.seed}")
        print(f"cycles         : {result['total_cycles']:,} "
              f"(calibration: {result['calibration_cycles']:,})")
        print(f"bandwidth      : {result['bits_per_kcycle']:.3f} "
              f"bits/kcycle = {result['bandwidth_bits_per_s']:,.0f} "
              f"bits/s @ {result['clock_hz'] / 1e9:.1f} GHz"
              + (" [cached]" if cached else ""))
    if result["success_rate"] < args.min_success:
        print(f"error: success rate {result['success_rate']:.2f} below "
              f"--min-success {args.min_success}", file=sys.stderr)
        return 1
    return 0


def _cmd_verify(args) -> int:
    from .analysis.report import format_table
    from .harness.runner import resolve_verify_target

    if args.list or not args.target:
        from .verify.targets import target_names
        rows = []
        for name in target_names():
            case = resolve_verify_target(name)
            rows.append((name, "leaks" if case.expect_leak else "safe",
                         case.notes))
        print(format_table(["target", "expected", "notes"], rows))
        print("\ngenerated gadgets: gen:<family>:<seed> "
              "(families: spec, stale, straight)")
        return 0

    params: Dict[str, Any] = {"target": args.target,
                              "defense": args.defense}
    if args.windows != "both":
        params["windows"] = [args.windows]
    if args.spec_depth is not None:
        params["spec_depth"] = args.spec_depth
    if args.runahead_len is not None:
        params["runahead_len"] = args.runahead_len
    if args.cross_check:
        params["cross_check"] = True
    trial = Trial(kind="verify", params=params)
    cache = resolve_cache(_cache_arg(args))
    result: Optional[Dict[str, Any]] = None
    if cache is not None and not args.force:
        result = cache.get(trial)
    cached = result is not None
    if result is None:
        from .harness.runner import run_trial
        result = run_trial(trial)
        if cache is not None:
            cache.put(trial, result)

    disagreement = args.cross_check and not result["ok"]
    if args.json:
        print(json.dumps({"trial": trial.to_dict(), "cached": cached,
                          "result": result}, sort_keys=True, indent=2))
    else:
        print(f"== speculative-leak verifier "
              f"[{result['target']} / {result['defense']}] ==")
        print(f"windows       : {', '.join(result['windows'])}")
        print(f"exploration   : {result['arch_steps']} arch steps, "
              f"{result['window_steps']} window steps, "
              f"{result['spec_forks']} spec + "
              f"{result['runahead_forks']} runahead forks"
              + (" [cached]" if cached else ""))
        if result["suppressed"]:
            print(f"suppressed    : {result['suppressed']} report(s) "
                  f"killed by the defense model")
        for report in result["reports"]:
            print(f"\nLEAK  pc={report['pc']}  "
                  f"window={report['window']}  "
                  f"taint={','.join(report['taint'])}")
            print(f"      entered via fork at pc={report['fork_pc']} "
                  f"(+{report['depth']} instructions)")
            print(f"      taint chain: "
                  f"{' -> '.join(str(pc) for pc in report['chain'])}")
        print()
        if result["clean"]:
            print("verdict       : clean — no secret-tainted load "
                  "address in any explored window")
        else:
            print(f"verdict       : {result['n_reports']} leak "
                  f"report(s)")
        if args.cross_check:
            cell = result["cross_check"]
            print(f"cross-check   : simulator "
                  f"{'extracted the secret' if cell['leaked'] else 'extracted nothing'} "
                  f"({cell['oracle']} oracle: {cell['detail']})")
            print("agreement     : "
                  + ("checker and simulator agree" if result["ok"] else
                     "DISAGREEMENT:\n" + "\n".join(
                         f"  - {d}" for d in result["disagreements"])))
    if disagreement:
        return 2
    return 0 if result["clean"] else 1


def _cmd_trace_record(args) -> int:
    from .harness.registry import get_workload
    from .trace import record_trace

    workload = get_workload(args.workload)
    trace = record_trace(workload, max_steps=args.max_steps,
                         max_events=args.max_events)
    out = args.out or f"{args.workload}.trace"
    trace.save(out)
    print(trace.summary())
    print(f"wrote {out}  (replay with: workload=trace:{out})")
    return 0


def _cmd_trace_info(args) -> int:
    from .harness.registry import make_config
    from .trace import TraceReplayWorkload, resolve_trace_source

    trace = resolve_trace_source(args.source)
    print(trace.summary())
    hierarchy = make_config("paper").hierarchy
    for level in ("l1d", "l2", "l3"):
        config = getattr(hierarchy, level)
        sets = len(set(trace.set_stream(config.n_sets, config.line_bytes)))
        print(f"  {level:4s} set coverage: {sets}/{config.n_sets} sets")
    workload = TraceReplayWorkload(trace)
    program, _, _ = workload.materialize()
    print(f"  replay   : {len(program.instructions)} instructions, "
          f"pattern region {workload.internal_ranges or 'none'}")
    return 0


def _cmd_trace_help(args) -> int:
    args.trace_parser.print_help()
    return 2


def _cmd_obs_record(args) -> int:
    from .harness.registry import get_workload, make_controller
    from .obs import FileSink

    workload = get_workload(args.workload)
    controller = make_controller(args.runahead) if args.runahead else None
    out = args.out or f"{args.workload}.evt"
    sink = FileSink(out)
    try:
        core = workload.run(runahead=controller, trace=sink,
                            max_cycles=args.max_cycles)
    finally:
        sink.close()
    stats = core.stats
    print(f"{args.workload}: {stats.cycles} cycles, "
          f"{stats.committed} committed, IPC {stats.ipc:.3f}")
    print(f"wrote {out}  ({sink.count} events; "
          f"view with: repro obs view {out})")
    return 0


def _cmd_obs_view(args) -> int:
    from .obs import load_events, render_html, render_text, \
        summarize_events

    events = load_events(args.trace)
    summary = summarize_events(events, bins=args.bins)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_html(summary, title=args.trace))
        print(f"wrote {args.html}", file=sys.stderr)
    print(render_text(summary))
    return 0


def _cmd_obs_help(args) -> int:
    args.obs_parser.print_help()
    return 2


def _cmd_report(args) -> int:
    source = args.source
    if source.endswith(".json"):
        with open(source, encoding="utf-8") as handle:
            result = SweepResult.from_json(handle.read())
        name = result.name
    else:
        preset = preset_registry.get(source)
        result = SerialExecutor().execute(preset.build(quick=args.quick),
                                          cache=_cache_arg(args))
        name = source
    preset = preset_registry.get(name)
    print(f"== {preset.title} ==")
    print(preset.render(result))
    return 0


def _cmd_cache(args) -> int:
    cache = ResultCache(root=args.cache_dir) if args.cache_dir \
        else ResultCache()
    entries = list(cache.root.rglob("*.json")) if cache.root.exists() \
        else []
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached records from {cache.root}")
        return 0
    print(f"cache root   : {cache.root}")
    print(f"code version : {cache.code_version}")
    print(f"records      : {len(entries)}")
    return 0


def _campaign_report(campaign, results) -> None:
    for result in results:
        preset = preset_registry.PRESETS.get(result.name)
        if preset is not None:
            print(f"== {preset.title} ==")
            print(preset.render(result))
            print()
        print(result.describe())


def _cmd_campaign_run(args) -> int:
    from .campaign import Campaign

    sweeps = [preset_registry.get(name).build(quick=args.quick)
              for name in args.presets]
    directory = args.dir or f"campaigns/{'+'.join(args.presets)}"
    campaign = Campaign.create_or_open(
        directory, sweeps, cache=args.cache, workers=args.workers,
        timeout=args.timeout, max_retries=args.retries)
    progress = lambda line: print(line, file=sys.stderr)   # noqa: E731
    results = campaign.run(workers=args.workers, progress=progress,
                           force=args.force, serial=args.serial)
    if args.json:
        for result in results:
            print(result.to_json())
    else:
        _campaign_report(campaign, results)
        print(f"campaign directory: {campaign.directory}")
    return 0


def _cmd_campaign_resume(args) -> int:
    from .campaign import Campaign

    campaign = Campaign.open(args.dir)
    progress = lambda line: print(line, file=sys.stderr)   # noqa: E731
    results = campaign.run(workers=args.workers, progress=progress,
                           serial=args.serial)
    if args.json:
        for result in results:
            print(result.to_json())
    else:
        _campaign_report(campaign, results)
    return 0


def _cmd_campaign_status(args) -> int:
    from .campaign import campaign_status, render_status

    status = campaign_status(args.dir)
    if args.json:
        print(json.dumps(status, sort_keys=True, indent=2))
    else:
        print(render_status(status))
    return 0 if status["state"] != "failed" else 1


def _cmd_campaign_serve(args) -> int:
    from .campaign import serve

    serve(args.dir, host=args.host, port=args.port,
          announce=lambda line: print(line, file=sys.stderr),
          dashboard=args.dashboard)
    return 0


def _cmd_campaign_coordinate(args) -> int:
    from .campaign import coordinate

    return coordinate(
        args.dir, host=args.host, port=args.port,
        lease_seconds=args.lease, until_done=args.until_done,
        announce=lambda line: print(line, file=sys.stderr),
        progress=lambda line: print(line, file=sys.stderr),
        dashboard=args.dashboard)


def _cmd_campaign_worker(args) -> int:
    from .campaign import run_worker
    from .campaign.netretry import RetryPolicy

    policy = RetryPolicy(attempts=args.net_retries,
                         timeout=args.net_timeout)
    runner = None
    if args.executor == "fleet":
        from .batch.executor import fleet_trial_runner
        runner = fleet_trial_runner
    return run_worker(
        args.url, host=args.host, runner=runner, policy=policy,
        poll=args.poll, max_trials=args.max_trials,
        announce=lambda line: print(line, file=sys.stderr))


def _cmd_campaign_help(args) -> int:
    args.campaign_parser.print_help()
    return 2


def _cmd_bench_perf(args) -> int:
    from .harness import perfbench

    payload = perfbench.run_benchmark(repeats=args.repeats)
    if not args.no_sweep:
        payload["fig7_quick_sweep"] = perfbench.measure_fig7_quick(
            workers=args.sweep_workers)
    if args.cores_sweep:
        payload["cores"] = perfbench.measure_cores_scaling()
    baseline = None
    if args.compare:
        baseline = perfbench.load_payload(args.compare)
        # Carry the optimization history forward so BENCH_core.json keeps
        # documenting the before/after trajectory.
        if "history" in baseline:
            payload["history"] = baseline["history"]
    elif args.out and os.path.exists(args.out):
        previous = perfbench.load_payload(args.out)
        if "history" in previous:
            payload["history"] = previous["history"]
    perfbench.append_history(payload)
    if args.out:
        perfbench.dump_payload(payload, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    print(perfbench.render(payload))
    if "fig7_quick_sweep" in payload:
        sweep = payload["fig7_quick_sweep"]
        print(f"fig7 --quick sweep: {sweep['wall_seconds']:.3f}s "
              f"({sweep['trials']} trials, {sweep['workers']} worker(s))")
    if "cores" in payload:
        print()
        print(perfbench.render_cores(payload["cores"]))
    if baseline is None:
        return 0
    print(f"\ndelta vs {args.compare}:")
    print(perfbench.render_delta(payload, baseline))
    problems = perfbench.compare(payload, baseline,
                                 tolerance=args.tolerance)
    if problems:
        print(f"perf regression vs {args.compare} "
              f"(tolerance ±{args.tolerance:.0%}):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"within ±{args.tolerance:.0%} of {args.compare}",
          file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPECRUN reproduction — experiment harness CLI")
    sub = parser.add_subparsers(dest="command")

    def add_common(p):
        p.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk result cache")
        p.add_argument("--cache-dir", help="cache root directory")
        p.add_argument("--force", action="store_true",
                       help="recompute even on cache hits")

    p_sweep = sub.add_parser("sweep", help="run a paper-figure sweep")
    p_sweep.add_argument("preset", nargs="?",
                         help="preset name (omit with --list)")
    p_sweep.add_argument("--list", action="store_true",
                         help="list available presets")
    p_sweep.add_argument("--quick", action="store_true",
                         help="reduced smoke-tier grid")
    p_sweep.add_argument("--workers", type=int, default=None,
                         help=f"worker processes "
                              f"(default: $REPRO_WORKERS or "
                              f"{default_workers()})")
    p_sweep.add_argument("--executor", choices=sorted(EXECUTORS),
                         default=None,
                         help="execution strategy (default: "
                              "$REPRO_EXECUTOR, else serial/pool by "
                              "--workers); all are byte-identical")
    p_sweep.add_argument("--out", help="write canonical result JSON here")
    p_sweep.add_argument("--json", action="store_true",
                         help="print canonical JSON instead of the report")
    add_common(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_run = sub.add_parser("run", help="run one ad-hoc trial")
    p_run.add_argument("kind",
                       choices=("attack", "ipc", "window", "run", "taint",
                                "extract", "verify"))
    p_run.add_argument("params", nargs="*", metavar="key=value",
                       help="trial params, dots nest "
                            "(config.rob_size=64)")
    add_common(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_attack = sub.add_parser(
        "attack", help="extract a secret through a noisy covert channel")
    p_attack.add_argument("--secret", default="SPECRUN",
                          help="ASCII secret to plant and extract "
                               "(default: SPECRUN)")
    p_attack.add_argument("--variant", default="pht",
                          choices=("pht", "btb", "rsb-overwrite",
                                   "rsb-flush"))
    p_attack.add_argument("--receiver", default="flush-reload",
                          choices=("flush-reload", "evict-reload",
                                   "prime-probe"))
    p_attack.add_argument("--runahead", default="original",
                          help="runahead controller under attack "
                               "(registry name; default: original)")
    p_attack.add_argument("--trials", type=int, default=3,
                          help="measurement trials per byte (default 3)")
    p_attack.add_argument("--jitter", type=int, default=24,
                          help="max timing jitter in cycles (default 24)")
    p_attack.add_argument("--evict-rate", type=float, default=0.04,
                          help="co-runner eviction probability per line")
    p_attack.add_argument("--pollute-rate", type=float, default=0.04,
                          help="prefetch-pollution probability per line")
    p_attack.add_argument("--cores", type=int, default=1,
                          help="core count: with >= 2 the receiver "
                               "probes the shared L3 from another core "
                               "(default 1: same-core measurement)")
    p_attack.add_argument("--corunner", default=None,
                          help="workload name run as a real interfering "
                               "instruction stream (needs --cores 3, or "
                               "--smt to share the victim's core)")
    p_attack.add_argument("--smt", action="store_true",
                          help="run the co-runner as an SMT thread of "
                               "the victim's core (shared L1/L2)")
    p_attack.add_argument("--corunner-runahead", default="none",
                          help="runahead controller for co-runner cores "
                               "(default: none)")
    p_attack.add_argument("--corunner-trace", default=None,
                          metavar="TRACE",
                          help="run a trace replay (family, trace-* "
                               "workload, or .trace file) on a dedicated "
                               "co-runner core; implies --cores 3")
    p_attack.add_argument("--victim-trace", default=None,
                          metavar="TRACE",
                          help="run a trace replay as an SMT thread of "
                               "the victim's core (shared L1/L2: trace "
                               "pressure in the victim slot)")
    p_attack.add_argument("--no-noise", action="store_true",
                          help="disable all measurement noise")
    p_attack.add_argument("--seed", type=int, default=7,
                          help="noise seed (default 7)")
    p_attack.add_argument("--min-success", type=float, default=0.0,
                          help="exit non-zero if the success rate falls "
                               "below this (CI gating)")
    p_attack.add_argument("--json", action="store_true",
                          help="print the raw trial record as JSON")
    add_common(p_attack)
    p_attack.set_defaults(func=_cmd_attack)

    from .verify.engine import DEFENSES as verify_defenses
    p_verify = sub.add_parser(
        "verify",
        help="static speculative-leak check of a gadget program")
    p_verify.add_argument("target", nargs="?",
                          help="registered target name or "
                               "gen:<family>:<seed> (omit with --list)")
    p_verify.add_argument("--list", action="store_true",
                          help="list registered verify targets")
    p_verify.add_argument("--defense", default="original",
                          choices=verify_defenses,
                          help="defense model to check under "
                               "(default: original)")
    p_verify.add_argument("--windows", default="both",
                          choices=("both", "speculation", "runahead"),
                          help="window kinds to explore (default: both)")
    p_verify.add_argument("--spec-depth", type=int, default=None,
                          help="speculation-window instruction budget "
                               "(default 256)")
    p_verify.add_argument("--runahead-len", type=int, default=None,
                          help="runahead-window instruction budget "
                               "(default 512)")
    p_verify.add_argument("--cross-check", action="store_true",
                          help="also run the target on the cycle "
                               "simulator and hold the differential "
                               "contract (exit 2 on disagreement)")
    p_verify.add_argument("--json", action="store_true",
                          help="print the raw trial record as JSON")
    add_common(p_verify)
    p_verify.set_defaults(func=_cmd_verify)

    p_trace = sub.add_parser(
        "trace", help="record / inspect trace-driven workloads")
    tsub = p_trace.add_subparsers(dest="trace_command")
    p_trace.set_defaults(func=_cmd_trace_help, trace_parser=p_trace)
    p_record = tsub.add_parser(
        "record", help="capture a trace from a registry workload")
    p_record.add_argument("workload",
                          help="workload registry name (e.g. mcf, lbm)")
    p_record.add_argument("--out", default=None,
                          help="output file (default: <workload>.trace)")
    p_record.add_argument("--max-events", type=int, default=None,
                          help="truncate the trace after N events")
    p_record.add_argument("--max-steps", type=int, default=2_000_000,
                          help="interpreter step budget (default 2M)")
    p_record.set_defaults(func=_cmd_trace_record)
    p_info = tsub.add_parser(
        "info", help="summarize a trace file or synthetic family")
    p_info.add_argument("source",
                        help="a .trace file, trace:<path>, or a family "
                             "(mcf/stream/gcc/zipf or trace-<family>)")
    p_info.set_defaults(func=_cmd_trace_info)

    p_obs = sub.add_parser(
        "obs", help="record / view micro-architectural event traces")
    osub = p_obs.add_subparsers(dest="obs_command")
    p_obs.set_defaults(func=_cmd_obs_help, obs_parser=p_obs)
    p_orecord = osub.add_parser(
        "record", help="run a workload with a .evt trace sink attached")
    p_orecord.add_argument("workload",
                           help="workload registry name (e.g. mcf, lbm)")
    p_orecord.add_argument("--runahead", default="original",
                           help="runahead controller "
                                "(registry name; default: original)")
    p_orecord.add_argument("--out", default=None,
                           help="output file (default: <workload>.evt)")
    p_orecord.add_argument("--max-cycles", type=int, default=5_000_000,
                           help="cycle budget (default 5M)")
    p_orecord.set_defaults(func=_cmd_obs_record)
    p_oview = osub.add_parser(
        "view", help="render a .evt trace as a pipeline timeline")
    p_oview.add_argument("trace", help="a .evt file from 'obs record'")
    p_oview.add_argument("--html", default=None, metavar="OUT",
                         help="also write a self-contained HTML page")
    p_oview.add_argument("--bins", type=int, default=64,
                         help="timeline resolution (default 64)")
    p_oview.set_defaults(func=_cmd_obs_view)

    p_campaign = sub.add_parser(
        "campaign",
        help="journaled, resumable multi-sweep campaigns "
             "(run/resume/status/serve/coordinate/worker)")
    csub = p_campaign.add_subparsers(dest="campaign_command")
    p_campaign.set_defaults(func=_cmd_campaign_help,
                            campaign_parser=p_campaign)

    p_crun = csub.add_parser(
        "run", help="start (or resume) a campaign of sweep presets")
    p_crun.add_argument("presets", nargs="+", metavar="preset",
                        help="one or more sweep preset names")
    p_crun.add_argument("--dir", default=None,
                        help="campaign directory "
                             "(default: campaigns/<presets>)")
    p_crun.add_argument("--quick", action="store_true",
                        help="build the reduced smoke-tier grids")
    p_crun.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: $REPRO_WORKERS)")
    p_crun.add_argument("--cache", default=None, metavar="URI",
                        help="campaign result store: dir:<path>, "
                             "sqlite:<path> or http://host:port, "
                             "relative paths inside the campaign dir "
                             "(default: dir:cache)")
    p_crun.add_argument("--timeout", type=float, default=None,
                        help="per-trial timeout in seconds "
                             "(default: none)")
    p_crun.add_argument("--retries", type=int, default=2,
                        help="max retries per trial for transient "
                             "worker failures (default 2)")
    p_crun.add_argument("--serial", action="store_true",
                        help="force in-process serial execution")
    p_crun.add_argument("--force", action="store_true",
                        help="recompute even on cache hits")
    p_crun.add_argument("--json", action="store_true",
                        help="print canonical result JSON instead of "
                             "reports")
    p_crun.set_defaults(func=_cmd_campaign_run)

    p_cresume = csub.add_parser(
        "resume", help="complete an interrupted campaign")
    p_cresume.add_argument("dir", help="campaign directory")
    p_cresume.add_argument("--workers", type=int, default=None,
                           help="worker processes (default: manifest)")
    p_cresume.add_argument("--serial", action="store_true",
                           help="force in-process serial execution")
    p_cresume.add_argument("--json", action="store_true",
                           help="print canonical result JSON instead "
                                "of reports")
    p_cresume.set_defaults(func=_cmd_campaign_resume)

    p_cstatus = csub.add_parser(
        "status", help="progress/metrics from the campaign journal")
    p_cstatus.add_argument("dir", help="campaign directory")
    p_cstatus.add_argument("--json", action="store_true",
                           help="print the status object as JSON")
    p_cstatus.set_defaults(func=_cmd_campaign_status)

    p_cserve = csub.add_parser(
        "serve", help="read-only HTTP status/result server")
    p_cserve.add_argument("dir", help="campaign directory")
    p_cserve.add_argument("--host", default="127.0.0.1",
                          help="bind address (default 127.0.0.1)")
    p_cserve.add_argument("--port", type=int, default=8008,
                          help="TCP port, 0 picks a free one "
                               "(default 8008)")
    p_cserve.add_argument("--dashboard", action="store_true",
                          help="also serve the single-file HTML "
                               "dashboard (/dashboard, /timeline)")
    p_cserve.set_defaults(func=_cmd_campaign_serve)

    p_ccoord = csub.add_parser(
        "coordinate",
        help="read-write coordinator: shard this campaign across "
             "worker hosts under journaled leases")
    p_ccoord.add_argument("dir", help="campaign directory")
    p_ccoord.add_argument("--host", default="127.0.0.1",
                          help="bind address (default 127.0.0.1; "
                               "0.0.0.0 for real multi-host runs)")
    p_ccoord.add_argument("--port", type=int, default=8008,
                          help="TCP port, 0 picks a free one "
                               "(default 8008)")
    p_ccoord.add_argument("--lease", type=float, default=30.0,
                          metavar="SECONDS",
                          help="lease lifetime; workers heartbeat at a "
                               "third of this, dead hosts' trials are "
                               "re-enqueued after it (default 30)")
    p_ccoord.add_argument("--until-done", action="store_true",
                          help="exit when the campaign finishes or "
                               "fails instead of serving forever")
    p_ccoord.add_argument("--dashboard", action="store_true",
                          help="also serve the single-file HTML "
                               "dashboard (/dashboard, /timeline)")
    p_ccoord.set_defaults(func=_cmd_campaign_coordinate)

    p_cworker = csub.add_parser(
        "worker", help="pull and compute trials from a coordinator")
    p_cworker.add_argument("url", help="coordinator URL "
                                       "(http://host:port)")
    p_cworker.add_argument("--host", default=None,
                           help="host identity in journal/status "
                                "(default: hostname:pid)")
    p_cworker.add_argument("--poll", type=float, default=0.5,
                           help="idle poll interval when no trial is "
                                "ready (default 0.5s)")
    p_cworker.add_argument("--max-trials", type=int, default=None,
                           help="stop after computing N trials "
                                "(default: run to completion)")
    p_cworker.add_argument("--net-timeout", type=float, default=10.0,
                           help="per-request network timeout "
                                "(default 10s)")
    p_cworker.add_argument("--net-retries", type=int, default=5,
                           help="attempts per network call before "
                                "giving up (default 5)")
    p_cworker.add_argument("--executor", choices=("serial", "fleet"),
                           default="serial",
                           help="per-trial compute strategy: fleet "
                                "batches a trial's core runs through "
                                "the fleet kernel (byte-identical)")
    p_cworker.set_defaults(func=_cmd_campaign_worker)

    p_report = sub.add_parser(
        "report", help="render a saved sweep result or cached preset")
    p_report.add_argument("source", help="result .json file or preset name")
    p_report.add_argument("--quick", action="store_true",
                          help="render the quick-tier grid of a preset")
    add_common(p_report)
    p_report.set_defaults(func=_cmd_report)

    p_cache = sub.add_parser("cache", help="inspect the result cache")
    p_cache.add_argument("--clear", action="store_true",
                         help="delete every cached record")
    p_cache.add_argument("--cache-dir", help="cache root directory")
    p_cache.set_defaults(func=_cmd_cache)

    p_bench = sub.add_parser(
        "bench-perf", help="measure simulator throughput (BENCH_core.json)")
    p_bench.add_argument("--out", default="BENCH_core.json",
                         help="write the measurement JSON here "
                              "('' disables; default BENCH_core.json)")
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="wall-clock repeats per scenario (best-of)")
    p_bench.add_argument("--compare", metavar="BASELINE.json",
                         help="compare against a baseline payload; "
                              "non-zero exit on regression")
    p_bench.add_argument("--tolerance", type=float, default=0.2,
                         help="allowed relative throughput drop vs the "
                              "baseline (default 0.2)")
    p_bench.add_argument("--no-sweep", action="store_true",
                         help="skip the fig7 --quick sweep wall-time probe")
    p_bench.add_argument("--sweep-workers", type=int, default=1,
                         help="worker processes for the sweep probe")
    p_bench.add_argument("--cores-sweep",
                         action=argparse.BooleanOptionalAction,
                         default=True,
                         help="measure the fleet-width scaling axis "
                              "(fig7 --quick lanes at widths 2..16)")
    p_bench.set_defaults(func=_cmd_bench_perf)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 2
    from .campaign.journal import CampaignError
    try:
        return args.func(args)
    except KeyError as exc:
        # Registry/preset lookups raise with a "known: [...]" message.
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    except (TrialError, CampaignError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pipe reader (`status | head`, `... | jq`) closed
        # early; exit quietly without letting the interpreter traceback
        # on the flush of the broken stdout.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())

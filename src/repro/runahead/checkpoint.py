"""Architectural checkpoint taken at runahead entry.

Mutlu'03 checkpoints the architectural register file, branch history and
return-address stack when entering runahead mode; everything executed
afterwards is discarded on exit and the checkpoint restored.  The only
side effects that survive are *cache fills* — which is both the
performance benefit and the SPECRUN attack surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class Checkpoint:
    """State restored on runahead exit."""

    arch_regs: List[object]       # copy of the architectural register file
    branch_snapshot: object       # BranchUnit speculative-state snapshot
    stalling_pc: int              # fetch resumes here on exit
    stalling_line: int            # cache line of the stalling load
    stalling_completion: int      # cycle the stalling data returns
    entry_cycle: int

"""Runahead execution variants: original, precise, vector."""

from .base import NoRunahead, RunaheadController
from .checkpoint import Checkpoint
from .original import OriginalRunahead
from .precise import PreciseRunahead, compute_stall_slices
from .runahead_cache import RunaheadCache
from .vector import VectorRunahead

__all__ = [
    "NoRunahead", "RunaheadController", "Checkpoint", "OriginalRunahead",
    "PreciseRunahead", "compute_stall_slices", "RunaheadCache",
    "VectorRunahead",
]

"""Precise runahead execution (Naithani et al., HPCA 2020).

PRE executes only the *stall slices* — the chains of instructions that
compute load addresses — during runahead mode, using free back-end
resources instead of a full checkpoint/flush.  We model the filtering
behaviour: at dispatch, instructions outside the static backward slice of
any load address (and that are not loads or branches) are dropped — they
complete immediately with INV results and consume no issue queue or
functional units.  Branch instructions still execute and resolve as usual
("the front-end relies on the branch predictor to steer the flow of
execution in runahead mode", §4.3) — which is exactly why PRE remains
vulnerable: an INV-source branch steers the slice down the poisoned path.

The slice is computed once per program with a flow-insensitive def-use
graph (networkx); over-approximation errs toward executing more, which is
conservative for both performance and the attack.
"""

from __future__ import annotations

import networkx as nx

from ..isa.instructions import Opcode
from ..isa.program import Program
from .base import RunaheadController
from .original import OriginalRunahead


def compute_stall_slices(program: Program):
    """Return the set of instruction indices in any load-address slice.

    Flow-insensitive: every definition of a register reaches every use.
    Nodes are instruction indices; an edge producer→consumer exists when
    the producer's destination is one of the consumer's sources.  The
    slice is the ancestor set of all load address operands, plus the
    loads themselves.
    """
    graph = nx.DiGraph()
    producers = {}
    for index, instr in enumerate(program.instructions):
        graph.add_node(index)
        if instr.dest is not None:
            producers.setdefault(instr.dest, []).append(index)
    for index, instr in enumerate(program.instructions):
        for src in instr.srcs:
            for producer in producers.get(src, ()):
                if producer != index:
                    graph.add_edge(producer, index)

    slice_set = set()
    for index, instr in enumerate(program.instructions):
        if instr.is_load() or instr.opcode is Opcode.RET:
            slice_set.add(index)
            slice_set.update(nx.ancestors(graph, index))
    return slice_set


class PreciseRunahead(OriginalRunahead):
    """Stall-slice-filtered runahead."""

    name = "precise"

    def __init__(self, min_stall_latency=0):
        super().__init__(min_stall_latency=min_stall_latency)
        self._slices = None

    def attach(self, core):
        super().attach(core)
        self._slices = compute_stall_slices(core.program)

    def filter_dispatch(self, core, instr, pc) -> bool:
        # Per-dispatch hot path in runahead mode: read the decode-time
        # flags instead of calling the predicate methods.
        if instr.branch or instr.load:
            return True
        if instr.opcode is Opcode.CLFLUSH:
            return True
        return (pc >> 2) in self._slices

    @property
    def slice_size(self):
        """Number of static instructions inside stall slices."""
        return len(self._slices) if self._slices is not None else 0

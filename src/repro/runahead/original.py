"""Original runahead execution (Mutlu et al., HPCA 2003).

Enter when a load that missed all the way to memory stalls at the head of
the reorder buffer; checkpoint; pseudo-retire everything (the core
implements the mechanics); exit when the stalling data returns.  Every
instruction executes in runahead mode, INV results propagate, and
branches with INV sources never resolve — the paper's Fig. 6 machine.
"""

from __future__ import annotations

from .base import RunaheadController


class OriginalRunahead(RunaheadController):
    """The baseline runahead policy the paper attacks."""

    name = "original"

    def __init__(self, min_stall_latency=0):
        super().__init__()
        #: Only enter when the remaining stall exceeds this many cycles
        #: (0 = enter as soon as the memory-level miss reaches the head).
        self.min_stall_latency = min_stall_latency

    def should_enter(self, core, head_entry) -> bool:
        remaining = head_entry.completion - core.cycle
        return remaining > self.min_stall_latency

"""Vector runahead execution (Naithani et al., ISCA 2021).

VR vectorizes striding loads during runahead: instead of running ahead
scalar-instruction by scalar-instruction, it issues many future loop
iterations' loads at once.  Scalar branches become predicate masks whose
direction is taken from the first lane (§4.3 of the SPECRUN paper), so
INV-source branches behave exactly as in original runahead — predicted,
never resolved — and the attack applies unchanged.

Modeling decisions (recorded in DESIGN.md): stride detection uses a
per-PC reference-prediction table trained on every executed load; once a
stride is confident, each runahead execution of that load issues
``vector_lanes`` additional line prefetches.  Gather re-vectorization of
*dependent* (pointer-chasing) loads is not modeled.
"""

from __future__ import annotations

from .original import OriginalRunahead


class _StrideEntry:
    __slots__ = ("last_addr", "stride", "confidence")

    def __init__(self, addr):
        self.last_addr = addr
        self.stride = 0
        self.confidence = 0

    def observe(self, addr):
        stride = addr - self.last_addr
        if stride != 0 and stride == self.stride:
            self.confidence += 1
        else:
            self.stride = stride
            self.confidence = 0 if stride == 0 else 1
        self.last_addr = addr


class VectorRunahead(OriginalRunahead):
    """Original runahead + stride-detected multi-lane prefetching."""

    name = "vector"

    def __init__(self, min_stall_latency=0, lanes=None, confidence=None):
        super().__init__(min_stall_latency=min_stall_latency)
        self._lanes = lanes
        self._confidence = confidence
        self._table = {}

    def attach(self, core):
        super().attach(core)
        if self._lanes is None:
            self._lanes = core.config.runahead.vector_lanes
        if self._confidence is None:
            self._confidence = core.config.runahead.stride_confidence

    def _observe(self, pc, addr):
        entry = self._table.get(pc)
        if entry is None:
            self._table[pc] = _StrideEntry(addr)
            return None
        entry.observe(addr)
        if entry.confidence >= self._confidence:
            return entry.stride
        return None

    def on_normal_load(self, core, entry, result):
        self._observe(entry.pc, entry.mem_addr)

    def on_runahead_load(self, core, entry, result):
        """Issue vector lanes ahead of a confident striding load."""
        stride = self._observe(entry.pc, entry.mem_addr)
        if stride is None:
            return
        line_bytes = core.config.hierarchy.line_bytes
        issued_lines = {core.hierarchy.line_of(entry.mem_addr)}
        for lane in range(1, self._lanes + 1):
            addr = entry.mem_addr + lane * stride
            if addr < 0:
                break
            line = core.hierarchy.line_of(addr)
            if line in issued_lines:
                continue
            issued_lines.add(line)
            core.hierarchy.access_data(addr, core.cycle, prefetch=True)
            core.stats.vector_prefetches += 1

    @property
    def table_size(self):
        return len(self._table)

"""Runahead controller interface.

The core owns the mechanics (checkpoint, INV propagation, pseudo-retire,
exit restore); a :class:`RunaheadController` decides the *policy*: when to
enter and exit, which instructions execute in runahead mode (precise
runahead filters to stall slices), what extra prefetches to issue (vector
runahead), and — for the secure variant of §6 — where runahead fills go
and what happens when branches resolve after exit.

:class:`NoRunahead` is the baseline machine: the stall simply blocks the
pipeline, and transient execution is bounded by the ROB (Fig. 5a).
"""

from __future__ import annotations


class RunaheadController:
    """Default policy hooks; subclasses override selectively."""

    name = "base"

    def __init__(self):
        self.core = None

    def attach(self, core):
        """Called once by the core during construction."""
        self.core = core

    # -- entry / exit ------------------------------------------------------------

    def should_enter(self, core, head_entry) -> bool:
        """Decide whether a memory-stalled ROB-head load triggers runahead."""
        return False

    def on_enter(self, core):
        """Called after the core has checkpointed and switched modes."""

    def should_exit(self, core, now) -> bool:
        """Default: exit when the stalling load's data has returned."""
        checkpoint = core.checkpoint
        return checkpoint is not None and now >= checkpoint.stalling_completion

    def on_exit(self, core):
        """Called just before the core restores the checkpoint."""

    # -- runahead-mode execution ----------------------------------------------------

    def filter_dispatch(self, core, instr, pc) -> bool:
        """Return False to drop the instruction from runahead execution
        (it completes immediately with an INV destination and consumes no
        backend resources) — precise runahead's stall-slice filter."""
        return True

    def runahead_load_fill(self, core, entry) -> bool:
        """Whether runahead-mode misses install lines into the caches.

        The insecure variants return True (that *is* the prefetching
        benefit — and the attack surface); the secure variant redirects
        fills to the SL cache and returns False here.
        """
        return True

    def runahead_load_override(self, core, entry, addr, now):
        """Optionally service a runahead-mode load without touching the
        hierarchy (returns a latency or None).  The secure controller
        serves SL-cache hits here so repeated episodes do not re-request
        already-quarantined lines from memory."""
        return None

    def on_runahead_load(self, core, entry, result):
        """Called for every runahead-mode load that accessed the hierarchy."""

    def on_normal_load(self, core, entry, result):
        """Called for every normal-mode load that accessed the hierarchy
        (observer only; used by vector runahead's stride trainer)."""

    def on_pseudo_retire(self, core, entry):
        """Called when an instruction pseudo-retires in runahead mode."""

    def on_inv_branch(self, core, entry):
        """Called when a branch becomes unresolvable (INV sources) in
        runahead mode.  Default: the prediction stands — the SPECRUN
        vulnerability.  The branch-skip mitigation overrides this."""

    # -- normal-mode hooks (used by the defense) --------------------------------------

    def normal_load_override(self, core, entry, addr, now):
        """Optionally service a normal-mode load (returns an AccessResult
        substitute or None).  The SL cache intercepts loads here."""
        return None

    def on_branch_resolved(self, core, entry, mispredicted):
        """Called for every resolved branch in any mode."""


class NoRunahead(RunaheadController):
    """Baseline: never enter runahead; the ROB bounds speculation."""

    name = "no-runahead"

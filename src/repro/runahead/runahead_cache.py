"""Runahead cache (Mutlu'03's 512-byte speculative store buffer).

Stores that pseudo-retire during runahead mode write here — never to
architectural memory — so later runahead loads can forward their data and
keep the prefetch slice accurate.  Entries carry the INV bit: a store
whose *data* was poisoned writes an INV marker so dependent loads poison
their destinations too.  The cache is cleared on runahead exit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple


class RunaheadCache:
    """Word-granular FIFO-evicting speculative store buffer."""

    def __init__(self, capacity=64):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, Tuple[object, bool]]" = OrderedDict()
        self.writes = 0
        self.reads = 0
        self.hits = 0

    def write(self, addr, value, inv=False):
        """Record a pseudo-retired store (evicts oldest when full)."""
        self.writes += 1
        if addr in self._entries:
            del self._entries[addr]
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[addr] = (value, inv)

    def read(self, addr) -> Optional[Tuple[object, bool]]:
        """Return ``(value, inv)`` if present, else None."""
        self.reads += 1
        entry = self._entries.get(addr)
        if entry is not None:
            self.hits += 1
        return entry

    def __len__(self):
        return len(self._entries)

    def clear(self):
        self._entries.clear()

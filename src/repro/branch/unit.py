"""Combined branch unit: direction predictor + BTB + RSB.

The fetch stage asks :meth:`BranchUnit.predict` for every control-flow
instruction; the prediction carries an opaque ``meta`` token and the unit
snapshot taken *before* the speculative updates, so the core can restore
speculative state precisely on a misprediction.

Resolution flows back through :meth:`resolve`, which trains the direction
tables and the BTB.  Training persists across runahead entry/exit per the
paper's (and Mutlu's) design — the PHT poisoning in attack step ① relies
on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..isa.instructions import INSTR_BYTES, Opcode
from .btb import BranchTargetBuffer
from .predictors import TwoLevelPredictor, make_direction_predictor
from .rsb import ReturnStackBuffer


@dataclass(slots=True)
class Prediction:
    """Fetch-time prediction for one control-flow instruction."""

    taken: bool
    target: int
    meta: object = None          # direction-predictor token
    snapshot: object = None      # unit state before speculative updates


@dataclass
class BranchStats:
    predictions: int = 0
    mispredictions: int = 0
    direction_mispredicts: int = 0
    target_mispredicts: int = 0
    rsb_mispredicts: int = 0

    @property
    def accuracy(self):
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


class BranchUnit:
    """Front-end branch prediction with checkpoint/restore recovery."""

    def __init__(self, direction=None, btb=None, rsb=None):
        self.direction = direction or TwoLevelPredictor()
        self.btb = btb or BranchTargetBuffer()
        self.rsb = rsb or ReturnStackBuffer()
        self.stats = BranchStats()

    @classmethod
    def with_predictor(cls, name, **kwargs):
        """Build a unit around a named direction predictor."""
        return cls(direction=make_direction_predictor(name, **kwargs))

    # -- prediction --------------------------------------------------------------

    def predict(self, pc, instr) -> Prediction:
        """Predict direction and target; applies speculative updates."""
        self.stats.predictions += 1
        snapshot = self.snapshot()
        fallthrough = pc + INSTR_BYTES
        op = instr.opcode

        if instr.cond_branch:
            taken, meta = self.direction.predict(pc)
            self.direction.spec_update(pc, taken)
            target = instr.target if taken else fallthrough
            return Prediction(taken, target, meta=meta, snapshot=snapshot)
        if op is Opcode.JMP:
            return Prediction(True, instr.target, snapshot=snapshot)
        if op is Opcode.CALL:
            self.rsb.push(fallthrough)
            return Prediction(True, instr.target, snapshot=snapshot)
        if op is Opcode.RET:
            predicted = self.rsb.pop()
            if predicted is None:
                predicted = self.btb.lookup(pc) or fallthrough
            return Prediction(True, predicted, snapshot=snapshot)
        if op is Opcode.JR:
            predicted = self.btb.lookup(pc)
            if predicted is None:
                predicted = fallthrough
            return Prediction(True, predicted, snapshot=snapshot)
        raise ValueError(f"not a control-flow instruction: {instr}")

    # -- recovery -----------------------------------------------------------------

    def snapshot(self):
        """Capture all speculative state (direction history + RSB)."""
        return (self.direction.snapshot(), self.rsb.snapshot())

    def restore(self, snap):
        direction_snap, rsb_snap = snap
        self.direction.restore(direction_snap)
        self.rsb.restore(rsb_snap)

    def reapply(self, pc, instr, taken):
        """Re-apply speculative updates for the *actual* outcome after a
        misprediction restored the snapshot."""
        op = instr.opcode
        if instr.is_conditional_branch():
            self.direction.spec_update(pc, taken)
        elif op is Opcode.CALL:
            self.rsb.push(pc + INSTR_BYTES)
        elif op is Opcode.RET:
            self.rsb.pop()

    # -- resolution ---------------------------------------------------------------

    def resolve(self, pc, instr, actual_taken, actual_target, prediction,
                train=True):
        """Record a resolved branch; returns True if it was mispredicted."""
        mispredicted = (actual_taken != prediction.taken or
                        (actual_taken and actual_target != prediction.target))
        if mispredicted:
            self.stats.mispredictions += 1
            if actual_taken != prediction.taken:
                self.stats.direction_mispredicts += 1
            else:
                self.stats.target_mispredicts += 1
            if instr.opcode is Opcode.RET:
                self.stats.rsb_mispredicts += 1
        if train:
            if instr.is_conditional_branch():
                self.direction.update(pc, actual_taken, prediction.meta)
            if actual_taken and instr.opcode in (Opcode.JR, Opcode.JMP,
                                                 Opcode.CALL):
                self.btb.update(pc, actual_target)
        return mispredicted

    def reset(self):
        self.direction.reset()
        self.btb.reset()
        self.rsb.reset()
        self.stats = BranchStats()

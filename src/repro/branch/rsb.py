"""Return stack buffer.

A small circular stack of return addresses: ``call`` pushes, ``ret`` pops
the prediction.  Crucially, the RSB predicts from its *own* copy of the
return address while the architectural ``ret`` reads the in-memory stack —
the divergence SpectreRSB exploits by overwriting (Fig. 4b) or flushing
(Fig. 4c) the stack slot.

The whole speculative state is tiny, so :meth:`snapshot` returns a full
copy for misprediction recovery.
"""

from __future__ import annotations

from typing import Optional, Tuple


class ReturnStackBuffer:
    """Fixed-capacity circular return-address stack."""

    def __init__(self, capacity=16):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries = [None] * capacity
        self._top = 0       # index of the next free slot
        self._depth = 0     # valid entries (saturates at capacity)
        self.underflows = 0

    def push(self, return_address):
        """Record a call's return address (wraps around when full)."""
        self._entries[self._top] = return_address
        self._top = (self._top + 1) % self.capacity
        if self._depth < self.capacity:
            self._depth += 1

    def pop(self) -> Optional[int]:
        """Predict a return target; None on underflow."""
        if self._depth == 0:
            self.underflows += 1
            return None
        self._top = (self._top - 1) % self.capacity
        self._depth -= 1
        return self._entries[self._top]

    def peek(self) -> Optional[int]:
        """Return the would-be prediction without popping."""
        if self._depth == 0:
            return None
        return self._entries[(self._top - 1) % self.capacity]

    @property
    def depth(self):
        return self._depth

    def snapshot(self) -> Tuple:
        """Full copy of the speculative state."""
        return (tuple(self._entries), self._top, self._depth)

    def restore(self, snap):
        entries, top, depth = snap
        self._entries = list(entries)
        self._top = top
        self._depth = depth

    def reset(self):
        self._entries = [None] * self.capacity
        self._top = 0
        self._depth = 0
        self.underflows = 0

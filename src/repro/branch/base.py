"""Direction-predictor interface and the saturating two-bit counter.

All predictors share a small contract so the :class:`~repro.branch.unit.
BranchUnit` (and the attack code that trains predictors) can swap them
freely — the paper stresses that SPECRUN is "compatible with different
branch prediction mechanisms", which the test matrix exercises.

``predict`` returns ``(taken, meta)`` where ``meta`` is an opaque token
(usually the table index used) that must be passed back to ``update`` at
resolution so the counter trained is the one that produced the prediction.
"""

from __future__ import annotations


class TwoBitCounter:
    """Classic saturating counter: 0,1 predict not-taken; 2,3 taken."""

    STRONG_NOT_TAKEN = 0
    WEAK_NOT_TAKEN = 1
    WEAK_TAKEN = 2
    STRONG_TAKEN = 3

    @staticmethod
    def predict(state):
        return state >= 2

    @staticmethod
    def update(state, taken):
        if taken:
            return state + 1 if state < 3 else 3
        return state - 1 if state > 0 else 0


class DirectionPredictor:
    """Interface for conditional-branch direction predictors."""

    name = "base"

    def predict(self, pc):
        """Return ``(taken, meta)`` for the branch at ``pc``."""
        raise NotImplementedError

    def spec_update(self, pc, taken):
        """Update speculative history at fetch time (no-op by default)."""

    def update(self, pc, taken, meta=None):
        """Train tables with the resolved outcome."""
        raise NotImplementedError

    def snapshot(self):
        """Opaque copy of speculative state (restored on misprediction)."""
        return None

    def restore(self, snap):
        """Restore speculative state saved by :meth:`snapshot`."""

    def reset(self):
        """Forget all training."""
        raise NotImplementedError

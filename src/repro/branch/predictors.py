"""Concrete direction predictors: bimodal, gshare, two-level adaptive.

Table 1 specifies a "two-level adaptive predictor"; :class:`TwoLevelPredictor`
is the default.  The alternatives exist because §4.4 argues the attack is
predictor-agnostic — the integration tests run the PoC against all three.
"""

from __future__ import annotations

from .base import DirectionPredictor, TwoBitCounter


class BimodalPredictor(DirectionPredictor):
    """A single PHT of two-bit counters indexed by the branch PC."""

    name = "bimodal"

    def __init__(self, table_bits=12):
        self.table_bits = table_bits
        self._mask = (1 << table_bits) - 1
        self._pht = [TwoBitCounter.WEAK_NOT_TAKEN] * (1 << table_bits)

    def _index(self, pc):
        return (pc >> 2) & self._mask

    def predict(self, pc):
        index = self._index(pc)
        return TwoBitCounter.predict(self._pht[index]), index

    def update(self, pc, taken, meta=None):
        index = meta if meta is not None else self._index(pc)
        self._pht[index] = TwoBitCounter.update(self._pht[index], taken)

    def reset(self):
        self._pht = [TwoBitCounter.WEAK_NOT_TAKEN] * (1 << self.table_bits)


class GSharePredictor(DirectionPredictor):
    """Global-history predictor: PHT indexed by ``pc ^ GHR``.

    The global history register is updated speculatively at fetch and is
    checkpointed/restored around mispredictions by the branch unit.
    """

    name = "gshare"

    def __init__(self, table_bits=12, history_bits=12):
        self.table_bits = table_bits
        self.history_bits = min(history_bits, table_bits)
        self._mask = (1 << table_bits) - 1
        self._history_mask = (1 << self.history_bits) - 1
        self._pht = [TwoBitCounter.WEAK_NOT_TAKEN] * (1 << table_bits)
        self.ghr = 0

    def _index(self, pc):
        return ((pc >> 2) ^ self.ghr) & self._mask

    def predict(self, pc):
        index = self._index(pc)
        return TwoBitCounter.predict(self._pht[index]), index

    def spec_update(self, pc, taken):
        self.ghr = ((self.ghr << 1) | int(taken)) & self._history_mask

    def update(self, pc, taken, meta=None):
        index = meta if meta is not None else self._index(pc)
        self._pht[index] = TwoBitCounter.update(self._pht[index], taken)

    def snapshot(self):
        return self.ghr

    def restore(self, snap):
        self.ghr = snap

    def reset(self):
        self._pht = [TwoBitCounter.WEAK_NOT_TAKEN] * (1 << self.table_bits)
        self.ghr = 0


class TwoLevelPredictor(DirectionPredictor):
    """Two-level adaptive predictor (Yeh–Patt style, per-branch history).

    Level 1: a branch-history table of ``history_bits``-bit local histories
    indexed by PC.  Level 2: a PHT of two-bit counters indexed by the local
    history concatenated with low PC bits.  Local histories are updated at
    resolution (non-speculative), which keeps misprediction recovery free.

    A freshly-seen branch needs ``history_bits`` resolutions to saturate its
    local history plus two more to flip the counter — the training loop in
    attack step ① must run at least that many iterations.
    """

    name = "twolevel"

    def __init__(self, bht_bits=10, history_bits=4, pc_bits=6):
        self.bht_bits = bht_bits
        self.history_bits = history_bits
        self.pc_bits = pc_bits
        self._bht_mask = (1 << bht_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._pc_mask = (1 << pc_bits) - 1
        self._bht = [0] * (1 << bht_bits)
        self._pht = [TwoBitCounter.WEAK_NOT_TAKEN] * \
            (1 << (history_bits + pc_bits))

    def _indices(self, pc):
        bht_index = (pc >> 2) & self._bht_mask
        history = self._bht[bht_index]
        pht_index = (history << self.pc_bits) | ((pc >> 2) & self._pc_mask)
        return bht_index, pht_index

    def predict(self, pc):
        bht_index, pht_index = self._indices(pc)
        return TwoBitCounter.predict(self._pht[pht_index]), pht_index

    def update(self, pc, taken, meta=None):
        bht_index, pht_index = self._indices(pc)
        if meta is not None:
            pht_index = meta
        self._pht[pht_index] = TwoBitCounter.update(self._pht[pht_index],
                                                    taken)
        self._bht[bht_index] = \
            ((self._bht[bht_index] << 1) | int(taken)) & self._history_mask

    def reset(self):
        self._bht = [0] * (1 << self.bht_bits)
        self._pht = [TwoBitCounter.WEAK_NOT_TAKEN] * \
            (1 << (self.history_bits + self.pc_bits))


_PREDICTORS = {
    "bimodal": BimodalPredictor,
    "gshare": GSharePredictor,
    "twolevel": TwoLevelPredictor,
}


def make_direction_predictor(name, **kwargs):
    """Instantiate a direction predictor by name."""
    try:
        cls = _PREDICTORS[name]
    except KeyError:
        raise ValueError(f"unknown predictor: {name!r}") from None
    return cls(**kwargs)

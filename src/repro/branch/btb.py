"""Branch target buffer.

Predicts targets for indirect jumps (``jr``) and caches targets of other
taken branches.  The BTB uses partial tags (``tag_bits``); with few or
zero tag bits, two branches whose indices collide *alias* — exactly the
property SpectreBTB exploits (Fig. 4a): the attacker trains a congruent
PC in its own code and the victim's indirect jump inherits the poisoned
target.
"""

from __future__ import annotations

from typing import Optional


class BranchTargetBuffer:
    """Direct-mapped target cache with configurable partial tags."""

    def __init__(self, index_bits=10, tag_bits=0):
        self.index_bits = index_bits
        self.tag_bits = tag_bits
        self._index_mask = (1 << index_bits) - 1
        self._tag_mask = (1 << tag_bits) - 1
        self._targets = [None] * (1 << index_bits)
        self._tags = [None] * (1 << index_bits)
        self.hits = 0
        self.misses = 0

    def _index(self, pc):
        return (pc >> 2) & self._index_mask

    def _tag(self, pc):
        return ((pc >> 2) >> self.index_bits) & self._tag_mask

    def lookup(self, pc) -> Optional[int]:
        """Return the predicted target for ``pc``, or None."""
        index = self._index(pc)
        if self._targets[index] is not None and \
                self._tags[index] == self._tag(pc):
            self.hits += 1
            return self._targets[index]
        self.misses += 1
        return None

    def update(self, pc, target):
        """Record the resolved target of a taken branch."""
        index = self._index(pc)
        self._targets[index] = target
        self._tags[index] = self._tag(pc)

    def aliases(self, pc_a, pc_b):
        """True if two PCs map to the same entry (attack-planning helper)."""
        return (self._index(pc_a) == self._index(pc_b) and
                self._tag(pc_a) == self._tag(pc_b))

    def congruent_pc(self, pc, offset_slots=1):
        """Return a different PC that aliases with ``pc``.

        Used by the SpectreBTB gadget generator to place the attacker's
        training branch at an address congruent with the victim's.
        """
        stride = 1 << (self.index_bits + 2)
        if self.tag_bits:
            stride <<= self.tag_bits
        return pc + offset_slots * stride

    def reset(self):
        self._targets = [None] * (1 << self.index_bits)
        self._tags = [None] * (1 << self.index_bits)
        self.hits = 0
        self.misses = 0

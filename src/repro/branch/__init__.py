"""Branch prediction: direction predictors, BTB, RSB, combined unit."""

from .base import DirectionPredictor, TwoBitCounter
from .btb import BranchTargetBuffer
from .predictors import (BimodalPredictor, GSharePredictor,
                         TwoLevelPredictor, make_direction_predictor)
from .rsb import ReturnStackBuffer
from .unit import BranchStats, BranchUnit, Prediction

__all__ = [
    "DirectionPredictor", "TwoBitCounter", "BranchTargetBuffer",
    "BimodalPredictor", "GSharePredictor", "TwoLevelPredictor",
    "make_direction_predictor", "ReturnStackBuffer", "BranchStats",
    "BranchUnit", "Prediction",
]

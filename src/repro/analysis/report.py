"""Plain-text tables and charts for the benchmark harness.

The benches reproduce the paper's tables and figures as text: bar charts
for Fig. 7, scatter-style latency plots for Figs. 9 and 11, and aligned
tables elsewhere.  Everything renders with ASCII so the output survives
CI logs and ``tee``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

_BAR = "#"


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned table with a header rule."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(row)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def format_bars(labels: Sequence[str], values: Sequence[float], width=40,
                unit="") -> str:
    """Horizontal bar chart (used for the Fig. 7 IPC comparison)."""
    if not values:
        return "(no data)"
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = _BAR * max(1, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.3f}{unit}")
    return "\n".join(lines)


def format_latency_plot(latencies: Sequence[int], height=12, width=64,
                        title="") -> str:
    """Downsampled ASCII scatter of probe latencies (Figs. 9 and 11).

    Buckets are reduced with ``min`` so a single-index latency dip — the
    leak signature — survives downsampling.
    """
    n = len(latencies)
    if n == 0:
        return "(no data)"
    step = max(1, n // width)
    columns = [min(latencies[i:i + step]) for i in range(0, n, step)]
    peak = max(columns) or 1
    rows = []
    for level in range(height, 0, -1):
        cutoff = peak * level / height
        prev_cutoff = peak * (level - 1) / height
        row = "".join("*" if prev_cutoff < value <= cutoff else " "
                      for value in columns)
        label = f"{round(cutoff):>5} |"
        rows.append(label + row)
    rows.append("      +" + "-" * len(columns))
    rows.append(f"       0{'index'.rjust(len(columns) - 1)}")
    out = [title] if title else []
    out.extend(rows)
    return "\n".join(out)


def normalized(values: Sequence[float], base: float) -> List[float]:
    """Normalize a series against a baseline value."""
    if base == 0:
        return [0.0 for _ in values]
    return [value / base for value in values]

"""Latency classification for the cache covert channel.

The probe phase (Fig. 8 lines 17-22, Fig. 9) yields one access latency
per candidate index.  Cached lines cluster near the L1/L2/L3 hit
latencies; uncached lines near the memory latency.  The classifier finds
the largest relative gap in the sorted latencies and splits there —
robust to the exact hit level (a secret line evicted from L1 to L3 still
sits far below a memory miss).
"""

from __future__ import annotations

from typing import List, Optional, Tuple


def largest_gap_threshold(latencies) -> Optional[int]:
    """Return a hit/miss threshold, or None if latencies look unimodal.

    Splits at the largest absolute gap between consecutive sorted values,
    provided that gap is at least twice the spread of the lower cluster
    (guards against splitting noise).
    """
    values = sorted(latencies)
    if len(values) < 2 or values[0] == values[-1]:
        return None
    best_gap = 0
    best_index = None
    for i in range(len(values) - 1):
        gap = values[i + 1] - values[i]
        if gap > best_gap:
            best_gap = gap
            best_index = i
    if best_index is None:
        return None
    low_spread = values[best_index] - values[0]
    if best_gap < 2 * max(low_spread, 1):
        return None
    return values[best_index] + best_gap // 2


def classify_hits(latencies, threshold=None) -> Tuple[List[int], int]:
    """Return (indices below threshold, threshold used).

    With no explicit threshold, one is derived via
    :func:`largest_gap_threshold`; if that fails (unimodal data — e.g. no
    leak at all), an empty hit list is returned with threshold -1.
    """
    if threshold is None:
        threshold = largest_gap_threshold(latencies)
    if threshold is None:
        return [], -1
    hits = [i for i, lat in enumerate(latencies) if lat < threshold]
    return hits, threshold

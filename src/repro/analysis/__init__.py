"""Measurement analysis: thresholds, leak detection, report rendering."""

from .leak import LeakReport, analyze_probe
from .report import (format_bars, format_latency_plot, format_table,
                     normalized)
from .thresholds import classify_hits, largest_gap_threshold

__all__ = [
    "LeakReport", "analyze_probe", "format_bars", "format_latency_plot",
    "format_table", "normalized", "classify_hits", "largest_gap_threshold",
]

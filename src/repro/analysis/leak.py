"""Leak detection and secret recovery from probe timings."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .thresholds import classify_hits


@dataclass
class LeakReport:
    """Interpretation of one probe-array timing vector (one Fig. 9 curve)."""

    latencies: List[int]
    hits: List[int]
    threshold: int
    recovered: Optional[int]     # the single leaked index, if unambiguous

    @property
    def leaked(self):
        return self.recovered is not None

    def describe(self):
        if not self.leaked:
            return "no leak detected (probe latencies are unimodal)"
        return (f"leak at index {self.recovered} "
                f"(latency {self.latencies[self.recovered]} vs "
                f"threshold {self.threshold})")


def analyze_probe(latencies, expected_hits=1, ignore_indices=()) -> LeakReport:
    """Classify probe latencies and recover the leaked index.

    ``ignore_indices`` excludes indices the experiment itself warms (for
    example index 0 when a zero-valued word feeds the transmit address).
    ``recovered`` is set only when the hit set, after exclusions, is a
    single index — the unambiguous-dip criterion used in Fig. 9.
    """
    hits, threshold = classify_hits(latencies)
    meaningful = [h for h in hits if h not in set(ignore_indices)]
    recovered = meaningful[0] if len(meaningful) == expected_hits == 1 \
        else None
    if recovered is None and len(meaningful) == 1:
        recovered = meaningful[0]
    return LeakReport(latencies=list(latencies), hits=meaningful,
                      threshold=threshold, recovered=recovered)

"""Leak detection and secret recovery from probe timings."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .thresholds import classify_hits


@dataclass
class LeakReport:
    """Interpretation of one probe-array timing vector (one Fig. 9 curve)."""

    latencies: List[int]
    hits: List[int]
    threshold: int
    recovered: Optional[int]     # the single leaked index, if unambiguous
    expected_hits: int = 1       # what the experiment planted (see below)

    @property
    def leaked(self):
        return self.recovered is not None

    @property
    def hits_as_expected(self):
        """Whether the hit count matches what the experiment planted."""
        return len(self.hits) == self.expected_hits

    def describe(self):
        if not self.leaked:
            return "no leak detected (probe latencies are unimodal)"
        return (f"leak at index {self.recovered} "
                f"(latency {self.latencies[self.recovered]} vs "
                f"threshold {self.threshold})")


def analyze_probe(latencies, expected_hits=1, ignore_indices=()) -> LeakReport:
    """Classify probe latencies and recover the leaked index.

    ``ignore_indices`` excludes indices the experiment itself warms (for
    example index 0 when a zero-valued word feeds the transmit address).

    Semantics, made explicit (an earlier revision reached the same
    outcome through a fallback branch that silently overrode the
    ``expected_hits`` comparison):

    * ``recovered`` is set **iff exactly one** hit remains after the
      exclusions — the unambiguous-dip criterion of Fig. 9 — regardless
      of ``expected_hits``.  A single recovered index cannot represent a
      multi-hit transmission, and zero or multiple hits are ambiguous.
    * ``expected_hits`` never changes recovery; it is recorded on the
      report so experiments that transmit several indices (or expect
      none) can check :attr:`LeakReport.hits_as_expected` separately.
      Multi-trial channels needing more than this single-shot rule use
      :func:`repro.channel.decode.decode_trials` instead.
    """
    hits, threshold = classify_hits(latencies)
    meaningful = [h for h in hits if h not in set(ignore_indices)]
    recovered = meaningful[0] if len(meaningful) == 1 else None
    return LeakReport(latencies=list(latencies), hits=meaningful,
                      threshold=threshold, recovered=recovered,
                      expected_hits=expected_hits)

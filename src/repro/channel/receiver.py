"""Covert-channel receiver models driven against the simulated hierarchy.

The paper's Fig. 9 PoC times its probe loop *inside* the victim's own
program — a perfect, noise-free oracle.  Real transient-execution
attacks instead run a **receiver** beside the victim: it prepares the
cache (flush, evict or prime), lets the victim's transmit gadget leave
its footprint, and then measures.  This module provides the three
classic receiver strategies against :class:`~repro.memory.hierarchy.
MemoryHierarchy`:

``FlushReloadReceiver``
    The probe lines are ``clflush``-ed (the attack program's own flush
    phase, step ② of Fig. 8); the receiver reloads each line and times
    it.  Signal = a *fast* line.
``EvictReloadReceiver``
    No ``clflush``: the receiver constructs per-level eviction sets
    from the hierarchy's real set mapping and walks them to push the
    probe lines out.  Reload timing as above; lines the attacker's own
    training warmed (and could not flush) are excluded via
    ``ignore_indices``.
``PrimeProbeReceiver``
    The receiver never touches the victim's lines at all: it fills
    ("primes") the cache sets the probe lines map to with its own
    eviction-set lines, and afterwards times those lines.  A victim fill
    evicts one primed way, so signal = a *slow* set (``signal_low`` is
    False).  Program activity disturbs a deterministic baseline of sets;
    a calibration run (see :mod:`repro.channel.session`) measures and
    excludes them.

Every receiver follows the same protocol: ``prepare()`` before the run,
``measure(now, draw) -> ProbeVector`` afterwards — once per trial.
``measure`` is read-only against the hierarchy (it uses
:meth:`~repro.memory.hierarchy.MemoryHierarchy.probe_latency`), which is
what makes multi-trial measurement of a single simulated run sound: the
probe cannot destroy the footprint it is reading, and each trial differs
only by its injected :class:`~repro.channel.noise.NoiseDraw`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..memory.cache import CacheConfig
from ..memory.hierarchy import MemoryHierarchy
from .noise import NO_NOISE, NoiseDraw

#: Tag offset for receiver-owned eviction lines.  Shifted past every
#: cache's index bits this puts them far above the attack image
#: (which lives around 1-2 MB), so they can never alias victim data.
EVICTION_TAG_BASE = 1 << 16


@dataclass(frozen=True)
class ProbeLayout:
    """Geometry of the transmit array the receiver monitors."""

    base: int          # address of probe entry 0 (line-aligned)
    entries: int       # number of candidate secret values
    stride: int        # bytes between entries (>= line size)

    @classmethod
    def from_attack(cls, attack) -> "ProbeLayout":
        """Layout of an :class:`~repro.attack.gadgets.AttackProgram`."""
        return cls(base=attack.array2_addr, entries=attack.probe_entries,
                   stride=attack.probe_stride)

    def line(self, index: int) -> int:
        """Line address the transmit gadget touches for value ``index``."""
        return self.base + index * self.stride


@dataclass(frozen=True)
class ProbeVector:
    """One trial's measurement: a latency per candidate index.

    ``signal_low`` tells the decoder which tail carries the signal:
    reload channels see the victim's line as *fast*, prime+probe sees
    the victim's set as *slow*.
    """

    latencies: Tuple[int, ...]
    signal_low: bool = True
    trial: int = 0
    receiver: str = ""


def eviction_set(config: CacheConfig, line: int, ways: Optional[int] = None,
                 salt: int = 0) -> List[int]:
    """Receiver-owned line addresses mapping to ``line``'s set.

    Uses the same index arithmetic as
    :class:`~repro.memory.cache.SetAssociativeCache` (line bits, then
    ``n_sets`` index bits), with tags drawn from a reserved high range so
    the addresses are disjoint from any victim allocation.  ``salt``
    separates the eviction sets different receivers build for the same
    set.
    """
    shift = (config.line_bytes - 1).bit_length()
    set_bits = config.n_sets.bit_length() - 1
    set_index = (line >> shift) & (config.n_sets - 1)
    ways = config.assoc if ways is None else ways
    base_tag = EVICTION_TAG_BASE * (salt + 1)
    return [((base_tag + way) << (shift + set_bits)) | (set_index << shift)
            for way in range(ways)]


class Receiver:
    """Base class: binds a probe layout to one hierarchy instance.

    Subclasses set the class attributes and implement ``prepare`` /
    ``_index_latency``.  A receiver instance is single-run: ``prepare``
    may mutate the hierarchy, so the session builds a fresh receiver per
    simulated run.
    """

    name = "base"
    #: Whether the attack program's in-assembly probe-array flush phase
    #: should run (flush+reload owns a working ``clflush``).
    uses_clflush = False
    #: True when the signal is a fast line (reload channels).
    signal_low = True
    #: True when decoding needs a baseline run to subtract deterministic
    #: self-interference (prime+probe).
    needs_calibration = False

    def __init__(self, layout: ProbeLayout, hierarchy: MemoryHierarchy):
        self.layout = layout
        self.hierarchy = hierarchy
        self.hit_latency = hierarchy.config.data_hit_latency
        self.miss_latency = hierarchy.config.data_miss_latency

    # -- protocol ---------------------------------------------------------------

    def probe_lines(self) -> List[int]:
        """The victim-side lines whose state encodes the secret."""
        return [self.layout.line(i) for i in range(self.layout.entries)]

    def noise_lines(self) -> List[int]:
        """Lines the noise model perturbs (receiver-monitored lines)."""
        return self.probe_lines()

    def prepare(self) -> None:
        """Reset the channel before the victim runs (flush/evict/prime)."""
        raise NotImplementedError

    def measure(self, now: int, draw: NoiseDraw = NO_NOISE,
                trial: int = 0) -> ProbeVector:
        """Time every candidate index at cycle ``now`` (read-only)."""
        latencies = []
        for index in range(self.layout.entries):
            latency = self._index_latency(index, now, draw)
            latencies.append(max(1, latency + draw.jitter(index)))
        return ProbeVector(latencies=tuple(latencies),
                           signal_low=self.signal_low, trial=trial,
                           receiver=self.name)

    def cross_core(self) -> "Receiver":
        """Rebase the channel's fast reference to the shared LLC.

        A receiver measuring from *another core's* view never holds the
        victim's lines in its own L1/L2, so the fastest a victim fill
        can appear is an L3 hit — and prefetcher "pollution" likewise
        lands in the shared LLC, not the attacker's L1.  Idempotent for
        prime+probe, whose reference is the LLC walk already.
        """
        self.hit_latency = self.hierarchy.config.llc_hit_latency
        return self

    # -- helpers ----------------------------------------------------------------

    def _line_latency(self, line: int, now: int, draw: NoiseDraw) -> int:
        """Observed latency of one monitored line under the noise draw."""
        if line in draw.evicted:
            return self.miss_latency
        if line in draw.polluted:
            return self._polluted_latency()
        latency, _ = self.hierarchy.probe_latency(line, now)
        return latency

    def _polluted_latency(self) -> int:
        return self.hit_latency

    def _index_latency(self, index: int, now: int, draw: NoiseDraw) -> int:
        raise NotImplementedError


class _ReloadReceiver(Receiver):
    """Shared reload-timing half of flush+reload and evict+reload."""

    def _index_latency(self, index: int, now: int, draw: NoiseDraw) -> int:
        return self._line_latency(self.layout.line(index), now, draw)


class FlushReloadReceiver(_ReloadReceiver):
    """Flush+Reload: ``clflush`` the probe lines, reload and time them.

    The flush half runs inside the attack program (its step-② flush
    phase survives in the external-probe build); ``prepare`` re-flushes
    defensively so the receiver is also usable standalone.  With no
    noise and one trial this reproduces the Fig. 9 single-dip result of
    the in-program probe loop exactly (same recovered index, same
    unambiguous-dip criterion).
    """

    name = "flush-reload"
    uses_clflush = True

    def prepare(self) -> None:
        for line in self.probe_lines():
            self.hierarchy.flush_line(line)


class EvictReloadReceiver(_ReloadReceiver):
    """Evict+Reload: no ``clflush`` — evict probe lines via set conflicts.

    ``prepare`` walks per-level eviction sets (built against the real
    L1D/L2/L3 set mapping) so every probe line's set is filled with
    receiver lines, pushing any resident probe line out.  Because the
    attack program can no longer flush between training and trigger,
    lines the training phase itself warmed stay hot — the session
    excludes them via ``AttackProgram.warmed_probe_indices``.
    """

    name = "evict-reload"
    uses_clflush = False

    def prepare(self) -> None:
        lines = self.probe_lines()
        for salt, cache in enumerate((self.hierarchy.l1d, self.hierarchy.l2,
                                      self.hierarchy.l3)):
            seen_sets = set()
            shift = (cache.config.line_bytes - 1).bit_length()
            mask = cache.config.n_sets - 1
            for line in lines:
                set_index = (line >> shift) & mask
                if set_index in seen_sets:
                    continue
                seen_sets.add(set_index)
                for ev_line in eviction_set(cache.config, line, salt=salt):
                    cache.fill(ev_line)


class PrimeProbeReceiver(Receiver):
    """Prime+Probe against the L3 sets the probe entries map to.

    With the paper's geometry (4 MB, 8-way L3; 512-byte probe stride)
    every one of the 256 probe entries maps to a *distinct* L3 set, so
    the channel resolves a full byte.  ``prepare`` fills each such set
    with an 8-way eviction set; the victim's transmit fill evicts one
    primed way, and ``measure`` reports the slowest line of each set —
    fast (L3 hit) for untouched sets, memory-slow where the victim (or
    deterministic program activity, removed by calibration) landed.
    """

    name = "prime-probe"
    uses_clflush = False
    signal_low = False
    needs_calibration = True

    def __init__(self, layout: ProbeLayout, hierarchy: MemoryHierarchy):
        super().__init__(layout, hierarchy)
        cache = hierarchy.l3
        self._sets: List[List[int]] = [
            eviction_set(cache.config, layout.line(i), salt=7)
            for i in range(layout.entries)]
        # A primed line re-probed after the victim ran sits in L3 (we
        # prime L3 only, so the L1/L2 walk misses first).
        self.hit_latency = hierarchy.config.llc_hit_latency

    def noise_lines(self) -> List[int]:
        return [line for ev_set in self._sets for line in ev_set]

    def prepare(self) -> None:
        for ev_set in self._sets:
            for line in ev_set:
                self.hierarchy.l3.fill(line)

    def _polluted_latency(self) -> int:
        return self.hit_latency

    def _index_latency(self, index: int, now: int, draw: NoiseDraw) -> int:
        return max(self._line_latency(line, now, draw)
                   for line in self._sets[index])


RECEIVERS: Dict[str, Type[Receiver]] = {
    FlushReloadReceiver.name: FlushReloadReceiver,
    EvictReloadReceiver.name: EvictReloadReceiver,
    PrimeProbeReceiver.name: PrimeProbeReceiver,
}


def receiver_class(name: str) -> Type[Receiver]:
    try:
        return RECEIVERS[name]
    except KeyError:
        raise KeyError(f"unknown receiver {name!r}; "
                       f"known: {sorted(RECEIVERS)}") from None


def make_receiver(name: str, layout: ProbeLayout,
                  hierarchy: MemoryHierarchy) -> Receiver:
    """Instantiate a fresh receiver bound to one hierarchy."""
    return receiver_class(name)(layout, hierarchy)

"""Covert-channel receiver subsystem (see docs/CHANNELS.md).

A new layer between the core simulator and the attack orchestration:
receiver models (flush+reload, evict+reload, prime+probe) measured
against the simulated :class:`~repro.memory.hierarchy.MemoryHierarchy`,
deterministic injectable noise, multi-trial statistical decoding, and
multi-byte secret extraction with channel-bandwidth metrics.
"""

from .decode import ChannelDecode, decode_trials, dip_space, signal_indices
from .extract import (DEFAULT_CLOCK_HZ, ByteResult, ExtractionResult,
                      extract_secret, render_byte_text)
from .noise import (NO_NOISE, NoiseDraw, NoiseModel, SplitMix64,
                    derive_seed)
from .receiver import (RECEIVERS, EvictReloadReceiver, FlushReloadReceiver,
                       PrimeProbeReceiver, ProbeLayout, ProbeVector,
                       Receiver, eviction_set, make_receiver,
                       receiver_class)
from .session import (ChannelOutcome, calibrate_receiver,
                      run_channel_attack)

__all__ = [
    "ChannelDecode", "decode_trials", "dip_space", "signal_indices",
    "DEFAULT_CLOCK_HZ", "ByteResult", "ExtractionResult", "extract_secret",
    "render_byte_text",
    "NO_NOISE", "NoiseDraw", "NoiseModel", "SplitMix64", "derive_seed",
    "RECEIVERS", "EvictReloadReceiver", "FlushReloadReceiver",
    "PrimeProbeReceiver", "ProbeLayout", "ProbeVector", "Receiver",
    "eviction_set", "make_receiver", "receiver_class",
    "ChannelOutcome", "calibrate_receiver", "run_channel_attack",
]

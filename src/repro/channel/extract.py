"""Multi-byte secret extraction over the covert channel.

The Fig. 9 PoC leaks one planted value.  A real attacker loops the
transmit gadget over a secret *buffer* and reads it out byte by byte;
this module reproduces that end-to-end: per byte it builds the attack
program with that byte planted, runs it once, decodes ``trials`` noisy
receiver measurements, and finally reports recovered bytes, success
rate, trials-to-recover and the effective channel bandwidth derived from
simulated cycle counts.

Everything is deterministic under a fixed ``seed`` — per-byte noise
streams derive from ``(seed, byte index, trial)`` — so extraction
results are safe to cache and to shard across harness workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

from ..pipeline.config import CoreConfig
from ..runahead.base import RunaheadController
from .decode import ChannelDecode, decode_trials
from .noise import NoiseModel, derive_seed
from .receiver import receiver_class
from .session import (DEFAULT_MAX_CYCLES, calibrate_receiver,
                      run_channel_attack)

#: Nominal clock used to express simulated cycles as wall time; the
#: paper's Table-1 machine is a contemporary out-of-order core.
DEFAULT_CLOCK_HZ = 2_000_000_000


def render_byte_text(values: Sequence[Optional[int]],
                     placeholder: str = "?") -> str:
    """Render (possibly partially) recovered bytes as printable text.

    The single renderer behind ``ExtractionResult.recovered_text``, the
    preset reports and the CLI: ``placeholder`` for undecoded bytes,
    printable ASCII verbatim, ``\\xNN`` escapes otherwise.
    """
    out = []
    for value in values:
        if value is None:
            out.append(placeholder)
        elif 32 <= value < 127:
            out.append(chr(value))
        else:
            out.append(f"\\x{value:02x}")
    return "".join(out)


def _as_values(secret: Union[bytes, str, Sequence[int]]) -> List[int]:
    if isinstance(secret, str):
        secret = secret.encode("ascii")
    values = list(secret)
    if not values:
        raise ValueError("secret must not be empty")
    for value in values:
        if not isinstance(value, int) or not 0 <= value <= 255:
            raise ValueError(f"secret values must be bytes (0..255), "
                             f"got {value!r}")
    return values


def _runahead_factory(runahead) -> Callable[[], RunaheadController]:
    """Normalize the ``runahead`` argument to a zero-arg factory.

    Controllers hold per-run state (stride trainers, SL caches), so each
    simulated run needs a fresh instance: accept a factory, a controller
    class, or ``None`` (paper default: original runahead).
    """
    if runahead is None:
        from ..runahead.original import OriginalRunahead
        return OriginalRunahead
    if isinstance(runahead, type):
        return runahead
    if callable(runahead):
        return runahead
    raise TypeError("runahead must be a controller class or a zero-arg "
                    f"factory, got {runahead!r} (instances cannot be "
                    "reused across the runs of an extraction)")


@dataclass
class ByteResult:
    """Decoding outcome for one secret byte."""

    index: int
    planted: int
    recovered: Optional[int]
    confidence: float
    trials_to_recover: Optional[int]   # shortest prefix reaching the answer
    cycles: int                        # victim run + receiver probe cycles
    decode: ChannelDecode = field(repr=False, default=None)

    @property
    def correct(self) -> bool:
        return self.recovered == self.planted


@dataclass
class ExtractionResult:
    """A full multi-byte extraction run, with channel metrics."""

    secret: List[int]
    recovered: List[Optional[int]]
    bytes_: List[ByteResult]
    receiver: str
    trials: int
    noise: Optional[dict]
    total_cycles: int                  # attack + calibration cycles
    calibration_cycles: int
    clock_hz: int = DEFAULT_CLOCK_HZ
    #: Core/co-runner placement (see :class:`repro.multicore.scenario.
    #: Topology`); None on the single-core path.
    topology: Optional[dict] = None

    @property
    def success_rate(self) -> float:
        correct = sum(1 for b in self.bytes_ if b.correct)
        return correct / len(self.bytes_)

    @property
    def bits_attempted(self) -> int:
        return 8 * len(self.secret)

    @property
    def bits_recovered(self) -> int:
        return 8 * sum(1 for b in self.bytes_ if b.correct)

    @property
    def bits_per_kcycle(self) -> float:
        """Effective goodput: correctly recovered bits per 1000 cycles."""
        if not self.total_cycles:
            return 0.0
        return 1000.0 * self.bits_recovered / self.total_cycles

    def bandwidth_bits_per_s(self, clock_hz: Optional[int] = None) -> float:
        """Effective bandwidth in bits/s at a nominal core clock."""
        if not self.total_cycles:
            return 0.0
        clock = clock_hz or self.clock_hz
        return self.bits_recovered * clock / self.total_cycles

    def recovered_text(self, placeholder: str = "?") -> str:
        """Recovered bytes as printable text (placeholder where unknown)."""
        return render_byte_text(self.recovered, placeholder)

    def describe(self) -> str:
        return (f"{self.receiver} x{self.trials} trial(s): recovered "
                f"{sum(1 for b in self.bytes_ if b.correct)}"
                f"/{len(self.bytes_)} bytes "
                f"({self.recovered_text()!r}), "
                f"{self.bits_per_kcycle:.3f} bits/kcycle "
                f"({self.bandwidth_bits_per_s():,.0f} bits/s @ "
                f"{self.clock_hz / 1e9:.1f} GHz)")

    def to_dict(self) -> dict:
        payload = {
            "secret": list(self.secret),
            "recovered": list(self.recovered),
            "receiver": self.receiver,
            "trials": self.trials,
            "noise": self.noise,
            "success_rate": self.success_rate,
            "bits_attempted": self.bits_attempted,
            "bits_recovered": self.bits_recovered,
            "bits_per_kcycle": self.bits_per_kcycle,
            "bandwidth_bits_per_s": self.bandwidth_bits_per_s(),
            "clock_hz": self.clock_hz,
            "total_cycles": self.total_cycles,
            "calibration_cycles": self.calibration_cycles,
            "confidences": [b.confidence for b in self.bytes_],
            "trials_to_recover": [b.trials_to_recover for b in self.bytes_],
            "cycles_per_byte": [b.cycles for b in self.bytes_],
        }
        if self.topology is not None:
            payload["topology"] = self.topology
        return payload


def _trials_to_recover(decode: ChannelDecode) -> Optional[int]:
    """Shortest trial prefix whose decode equals the final answer."""
    if decode.recovered is None:
        return None
    for prefix in range(1, decode.trials + 1):
        partial = decode_trials(decode.vectors[:prefix],
                                ignore_indices=decode.ignore_indices)
        if partial.recovered == decode.recovered:
            return prefix
    return decode.trials


def extract_secret(secret: Union[bytes, str, Sequence[int]],
                   variant: str = "pht",
                   receiver: str = "flush-reload",
                   noise=None, trials: int = 1,
                   runahead=None, config: Optional[CoreConfig] = None,
                   seed: int = 0,
                   max_cycles: int = DEFAULT_MAX_CYCLES,
                   clock_hz: int = DEFAULT_CLOCK_HZ,
                   cores: int = 1, corunner: Optional[str] = None,
                   smt: bool = False, corunner_runahead: str = "none",
                   **gadget_kwargs) -> ExtractionResult:
    """Extract a secret buffer through a noisy covert-channel receiver.

    Per byte, one external-probe attack program is built with that byte
    planted and simulated once; ``trials`` receiver measurements (with
    per-trial noise) are decoded together.  A prime+probe receiver first
    runs one benign-trigger calibration pass, shared by every byte.

    ``cores``/``corunner``/``smt``/``corunner_runahead`` describe a
    multi-core placement (:class:`~repro.multicore.scenario.Topology`):
    with ``cores >= 2`` the receiver measures from another core through
    the shared L3, and a ``corunner`` workload runs as a real
    interfering instruction stream (on dedicated cores, or as an SMT
    thread of the victim's core with ``smt=True``).  The defaults are
    exactly the PR 3 single-core path.
    """
    from ..attack.gadgets import build_attack
    from ..multicore.scenario import Topology, calibrate_topology_receiver

    values = _as_values(secret)
    model = NoiseModel.from_spec(noise)
    cls = receiver_class(receiver)
    make_runahead = _runahead_factory(runahead)
    config = config or CoreConfig.paper()
    topology = Topology.from_params(
        {"cores": cores, "corunner": corunner, "smt": smt,
         "corunner_runahead": corunner_runahead})
    build_kwargs = dict(gadget_kwargs)
    build_kwargs.setdefault("external_probe", True)
    build_kwargs.setdefault("flush_probe_array", cls.uses_clflush)

    calibration_ignore: tuple = ()
    calibration_cycles = 0
    if cls.needs_calibration:
        benign = build_attack(variant, secret_value=values[0],
                              trigger_index=1, **build_kwargs)
        if topology is not None:
            calibration_ignore, calibration_cycles = \
                calibrate_topology_receiver(benign, make_runahead(),
                                            config, receiver, topology,
                                            max_cycles)
        else:
            calibration_ignore, calibration_cycles = calibrate_receiver(
                benign, make_runahead(), config, receiver, max_cycles)

    results: List[ByteResult] = []
    total_cycles = calibration_cycles
    for index, value in enumerate(values):
        attack = build_attack(variant, secret_value=value, **build_kwargs)
        outcome = run_channel_attack(
            attack, make_runahead(), config, receiver,
            noise=model, trials=trials,
            seed=derive_seed("extract", seed, index),
            max_cycles=max_cycles, extra_ignore=calibration_ignore,
            topology=topology)
        byte_cycles = outcome.cycles + outcome.measure_cycles
        total_cycles += byte_cycles
        results.append(ByteResult(
            index=index, planted=value, recovered=outcome.recovered,
            confidence=outcome.confidence,
            trials_to_recover=_trials_to_recover(outcome.decode),
            cycles=byte_cycles, decode=outcome.decode))

    return ExtractionResult(
        secret=values, recovered=[b.recovered for b in results],
        bytes_=results, receiver=receiver, trials=trials,
        noise=model.to_spec() if model is not None else None,
        total_cycles=total_cycles, calibration_cycles=calibration_cycles,
        clock_hz=clock_hz,
        topology=topology.to_spec() if topology is not None else None)

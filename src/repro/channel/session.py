"""Channel-attack orchestration: one simulated run, many receiver trials.

The simulator is deterministic, so the expensive part of a noisy-channel
experiment — the cycle-level run that plants the transmit footprint — is
executed **once**; every trial then re-measures the finished hierarchy
through a read-only receiver with an independently seeded noise draw.
That keeps a trials-vs-success-rate sweep linear in secret bytes rather
than in ``bytes x trials``, and makes the whole experiment a pure
function of ``(attack spec, receiver, noise spec, seed)``.

The flow per transmitted value:

1. build a fresh :class:`~repro.pipeline.core.Core` on the
   external-probe attack program, ``receiver.prepare()``, run to halt;
2. for prime+probe, optionally run a *calibration* core first (same
   program with a benign trigger index) to learn the deterministic
   baseline of self-disturbed sets, which decoding then ignores;
3. measure ``trials`` probe vectors (per-trial noise seeded from
   :func:`~repro.channel.noise.derive_seed`), decode with
   :func:`~repro.channel.decode.decode_trials`.

Public contract
---------------
* :func:`run_channel_attack` is the single entry point for one-value
  channel runs; :func:`repro.channel.extract.extract_secret` loops it
  per byte, and the harness ``attack``/``extract`` trial kinds call
  those two — nothing else constructs receivers against a live run.
  Passing ``topology`` routes to :func:`repro.multicore.scenario.
  run_topology_attack`; the single-core path is byte-identical with
  or without that parameter present.
* :class:`ChannelOutcome` is the stable result shape: ``to_dict`` is
  what harness records persist and cache, so new fields must keep old
  payloads decodable (add keys conditionally, as ``topology`` does).
* :func:`channel_ignore_set` and :func:`measure_and_decode` are shared
  with the multi-core path — they define the receiver-validation and
  ``derive_seed("channel", seed, trial)`` noise-seeding contracts both
  paths must honour for results to stay comparable and cacheable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Tuple

from ..pipeline.config import CoreConfig
from ..pipeline.core import Core
from .decode import ChannelDecode, decode_trials, signal_indices
from .noise import NO_NOISE, NoiseModel, SplitMix64, derive_seed
from .receiver import ProbeLayout, Receiver, make_receiver, receiver_class

DEFAULT_MAX_CYCLES = 3_000_000


@dataclass
class ChannelOutcome:
    """Everything one channel run produced."""

    receiver: str
    trials: int
    noise: Optional[dict]             # the noise spec actually applied
    decode: ChannelDecode
    ignore_indices: Tuple[int, ...]
    stats: object                     # CoreStats of the main run
    cycles: int                       # cycles of the main run
    #: Cycles the receiver itself spends probing: the serial sum of all
    #: measured latencies across trials (a real receiver's reload/probe
    #: loop).  Charged to the channel-bandwidth denominator.
    measure_cycles: int = 0
    calibration_cycles: int = 0
    #: Core/co-runner placement spec (:meth:`repro.multicore.scenario.
    #: Topology.to_spec`); None on the single-core path.
    topology: Optional[dict] = None

    @property
    def recovered(self) -> Optional[int]:
        return self.decode.recovered

    @property
    def confidence(self) -> float:
        return self.decode.confidence

    @property
    def report(self):
        return self.decode.report

    def to_dict(self) -> dict:
        payload = {
            "receiver": self.receiver,
            "trials": self.trials,
            "noise": self.noise,
            "recovered": self.recovered,
            "confidence": self.confidence,
            "votes": {str(k): v for k, v in sorted(self.decode.votes.items())},
            "ignore_indices": list(self.ignore_indices),
            "cycles": self.cycles,
            "measure_cycles": self.measure_cycles,
            "calibration_cycles": self.calibration_cycles,
        }
        if self.topology is not None:
            payload["topology"] = self.topology
        return payload


def channel_ignore_set(receiver_cls, attack, extra_ignore=()) -> set:
    """Probe indices excluded from decoding for this receiver/attack.

    Validates the attack is an external-probe build and, for receivers
    without a working ``clflush``, excludes the entries the attacker's
    own training phase warmed.  Shared by the single-core and the
    multi-core (:mod:`repro.multicore.scenario`) paths.
    """
    if not attack.external_probe:
        raise ValueError(
            "channel receivers need an external-probe attack program "
            "(build with external_probe=True)")
    ignore = set(extra_ignore)
    if not receiver_cls.uses_clflush:
        # No in-program flush between training and trigger: entries the
        # attacker's own training warmed stay hot and must not decode.
        ignore.update(attack.warmed_probe_indices)
    return ignore


def measure_and_decode(receiver, now, model, trials, seed, ignore):
    """Measure ``trials`` noisy probe vectors and decode them together.

    Per-trial noise streams derive from ``derive_seed("channel", seed,
    trial)`` — the seeding contract both the single-core and multi-core
    paths must share for their results to stay comparable.  Returns
    ``(vectors, decode, measure_cycles)``.
    """
    lines = receiver.noise_lines()
    n_indices = receiver.layout.entries
    vectors = []
    for trial in range(trials):
        if model is not None:
            rng = SplitMix64(derive_seed("channel", seed, trial))
            draw = model.draw(rng, lines, n_indices)
        else:
            draw = NO_NOISE
        vectors.append(receiver.measure(now, draw, trial=trial))
    decoded = decode_trials(vectors, ignore_indices=ignore)
    measure_cycles = sum(sum(v.latencies) for v in vectors)
    return vectors, decoded, measure_cycles


def _run_core(attack, runahead, config, max_cycles,
              receiver_name: Optional[str] = None):
    """Build, prepare and run one core; returns (core, receiver)."""
    core = Core(attack.program, memory_image=attack.image, config=config,
                runahead=runahead, initial_sp=attack.initial_sp,
                warm_icache=True)
    receiver = None
    if receiver_name is not None:
        receiver = make_receiver(receiver_name,
                                 ProbeLayout.from_attack(attack),
                                 core.hierarchy)
        receiver.prepare()
    core.run(max_cycles=max_cycles)
    if not core.halted:
        raise RuntimeError(
            f"attack program did not finish in {max_cycles} cycles")
    return core, receiver


def calibrate_receiver(calibration_attack, runahead, config: CoreConfig,
                       receiver_name: str,
                       max_cycles: int = DEFAULT_MAX_CYCLES) \
        -> Tuple[Tuple[int, ...], int]:
    """Run the benign-trigger program once and learn the self-noise.

    Returns ``(ignore_indices, cycles)``: the probe indices the
    receiver observes as signal even though no secret was transmitted
    (program data/code sharing sets with probe entries, the training
    phase's own transmit, ...).  Addresses — and therefore this set —
    are identical across secret values, so one calibration serves a
    whole multi-byte extraction.
    """
    core, receiver = _run_core(calibration_attack, runahead, config,
                               max_cycles, receiver_name)
    vector = receiver.measure(core.cycle, NO_NOISE, trial=0)
    baseline = signal_indices(vector)
    return tuple(sorted(baseline)), core.stats.cycles


def run_channel_attack(attack, runahead, config: Optional[CoreConfig],
                       receiver: str, noise=None, trials: int = 1,
                       seed: int = 0,
                       max_cycles: int = DEFAULT_MAX_CYCLES,
                       extra_ignore: Iterable[int] = (),
                       calibration_attack=None,
                       calibration_runahead=None,
                       topology=None) -> ChannelOutcome:
    """Run one external-probe attack and decode it through a receiver.

    Parameters mirror :class:`~repro.attack.specrun.SpecRunAttack` plus:

    receiver:
        Registry name (``flush-reload`` / ``evict-reload`` /
        ``prime-probe``).
    noise:
        ``None``, a :class:`~repro.channel.noise.NoiseModel`, or its
        JSON spec dict.  Applied per trial with independent draws.
    trials:
        Number of measurement trials decoded together.
    seed:
        Base seed; per-trial noise streams derive from it, so the whole
        outcome is reproducible at any worker count.
    extra_ignore:
        Probe indices excluded from decoding (e.g. a precomputed
        calibration baseline shared across an extraction).
    calibration_attack / calibration_runahead:
        Benign-trigger program (and a fresh controller for it) used when
        the receiver needs calibration and no ``extra_ignore`` baseline
        was supplied.
    topology:
        Optional :class:`~repro.multicore.scenario.Topology` (or its
        spec dict).  A multi-core arrangement routes the run through
        :func:`repro.multicore.scenario.run_topology_attack` — victim,
        attacker and co-runners on separate views of a shared L3;
        ``None``/single-core keeps this exact (byte-identical) path.
    """
    from ..multicore.scenario import Topology
    topology = Topology.from_params(topology)
    if topology is not None:
        from ..multicore.scenario import run_topology_attack
        return run_topology_attack(
            attack, runahead, config, receiver, topology, noise=noise,
            trials=trials, seed=seed, max_cycles=max_cycles,
            extra_ignore=extra_ignore,
            calibration_attack=calibration_attack,
            calibration_runahead=calibration_runahead)
    if trials < 1:
        raise ValueError("trials must be >= 1")
    config = config or CoreConfig.paper()
    model = NoiseModel.from_spec(noise)
    cls = receiver_class(receiver)
    ignore = channel_ignore_set(cls, attack, extra_ignore)
    calibration_cycles = 0
    if cls.needs_calibration and calibration_attack is not None:
        baseline, calibration_cycles = calibrate_receiver(
            calibration_attack, calibration_runahead, config, receiver,
            max_cycles)
        ignore.update(baseline)

    core, live = _run_core(attack, runahead, config, max_cycles, receiver)
    _, decoded, measure_cycles = measure_and_decode(
        live, core.cycle, model, trials, seed, ignore)
    return ChannelOutcome(
        receiver=receiver, trials=trials,
        noise=model.to_spec() if model is not None else None,
        decode=decoded, ignore_indices=tuple(sorted(ignore)),
        stats=core.stats, cycles=core.stats.cycles,
        measure_cycles=measure_cycles,
        calibration_cycles=calibration_cycles)

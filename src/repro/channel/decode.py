"""Statistical decoding of multi-trial probe measurements.

One noise-free trial decodes like the paper's Fig. 9: a single
unambiguous latency dip (:func:`~repro.analysis.leak.analyze_probe`).
Under noise that single-shot path breaks — jitter widens the clusters,
pollution plants false dips, co-runner evictions erase the real one — so
with ``trials > 1`` the decoder replaces it with aggregation:

1. **Per-index latency distributions.**  The element-wise *median*
   across trials suppresses any effect that hits an index in fewer than
   half the trials (pollution and eviction are per-trial-independent, so
   the true signal survives the median while noise rarely does).
2. **Majority vote.**  Each trial classifies independently
   (largest-gap threshold per trial); an index collects one vote per
   trial it appears as signal in.  The vote table breaks the ties the
   median cannot, and its winner must carry a strict majority.
3. **Confidence** is the fraction of trials that voted for the decoded
   index — 1.0 for a clean channel, degrading smoothly with noise.

Prime+probe vectors carry ``signal_low=False`` (the victim's set is the
*slow* one); decoding maps them into "dip space" so the same threshold
and recovery machinery serves both polarities.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.leak import LeakReport, analyze_probe
from ..analysis.thresholds import classify_hits
from .receiver import ProbeVector


def dip_space(vector: ProbeVector) -> List[int]:
    """Map a vector so that the signal is always the *low* tail."""
    if vector.signal_low:
        return list(vector.latencies)
    low, high = min(vector.latencies), max(vector.latencies)
    return [high + low - latency for latency in vector.latencies]


def signal_indices(vector: ProbeVector,
                   ignore_indices: Iterable[int] = ()) -> List[int]:
    """Indices one trial classifies as signal (its vote ballot)."""
    hits, _ = classify_hits(dip_space(vector))
    excluded = set(ignore_indices)
    return [h for h in hits if h not in excluded]


def median_vector(rows: Sequence[Sequence[int]]) -> List[int]:
    """Element-wise (lower) median across trials."""
    n_trials = len(rows)
    out = []
    for index in range(len(rows[0])):
        column = sorted(row[index] for row in rows)
        out.append(column[(n_trials - 1) // 2])
    return out


@dataclass
class ChannelDecode:
    """Outcome of decoding one transmitted value from N trials."""

    recovered: Optional[int]
    confidence: float                 # votes for `recovered` / trials
    trials: int
    votes: Dict[int, int]             # index -> number of trials voting
    report: LeakReport                # single-shot analysis of the median
    aggregated: List[int]             # per-index median latency (raw)
    per_trial_signals: List[List[int]]
    ignore_indices: Tuple[int, ...] = ()
    vectors: List[ProbeVector] = field(default_factory=list)

    @property
    def leaked(self) -> bool:
        return self.recovered is not None

    def latency_summary(self, index: int) -> Tuple[int, int, int]:
        """(min, median, max) observed latency of one index."""
        values = sorted(v.latencies[index] for v in self.vectors)
        return values[0], values[(len(values) - 1) // 2], values[-1]

    def describe(self) -> str:
        if not self.leaked:
            return (f"no value decoded from {self.trials} trial(s) "
                    f"({len(self.votes)} indices received votes)")
        return (f"decoded {self.recovered} with confidence "
                f"{self.confidence:.2f} ({self.votes.get(self.recovered, 0)}"
                f"/{self.trials} trials)")


def decode_trials(vectors: Sequence[ProbeVector],
                  ignore_indices: Iterable[int] = ()) -> ChannelDecode:
    """Decode one transmitted value from per-trial probe vectors.

    With a single clean trial this reduces *exactly* to
    :func:`~repro.analysis.leak.analyze_probe` on that trial's
    latencies, preserving the Fig. 9 semantics; with multiple trials the
    median + majority-vote machinery described in the module docstring
    takes over.
    """
    if not vectors:
        raise ValueError("decode_trials needs at least one probe vector")
    ignore = tuple(sorted(set(ignore_indices)))
    ballots = [signal_indices(v, ignore) for v in vectors]
    votes = Counter()
    for ballot in ballots:
        votes.update(ballot)

    aggregated = median_vector([v.latencies for v in vectors])
    dip_median = median_vector([dip_space(v) for v in vectors])
    report = analyze_probe(dip_median, ignore_indices=ignore)
    if vectors[0].signal_low is False:
        # Expose the raw (inverted-polarity) medians in the report;
        # hits/recovered/threshold were derived in dip space.
        report.latencies = aggregated

    recovered = report.recovered
    if recovered is None and votes:
        # The median alone is ambiguous (or empty); fall back to the
        # vote table.  Ties break on the lowest median dip-space
        # latency, then the lowest index — both deterministic.
        top = max(votes.values())
        if 2 * top > len(vectors):
            tied = [index for index, n in votes.items() if n == top]
            recovered = min(tied, key=lambda i: (dip_median[i], i))
            # The report is the channel's final interpretation: carry
            # the vote verdict into it so AttackResult / renderers see
            # one answer (hits keep the full ambiguous median set).
            report.recovered = recovered

    # Confidence is the voting support for the decoded index.  The
    # median path can (rarely) decode an index no individual trial's
    # threshold classified — the aggregate itself is then the evidence,
    # so confidence floors at one trial's worth instead of reading 0.0
    # beside a recovered value.
    if recovered is None:
        confidence = 0.0
    else:
        confidence = max(votes.get(recovered, 0), 1) / len(vectors)
    return ChannelDecode(recovered=recovered, confidence=confidence,
                         trials=len(vectors), votes=dict(votes),
                         report=report, aggregated=aggregated,
                         per_trial_signals=ballots, ignore_indices=ignore,
                         vectors=list(vectors))

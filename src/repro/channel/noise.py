"""Deterministic noise models for the covert-channel receivers.

Real cache covert channels are noisy: probe timings jitter with pipeline
and DRAM state, co-running processes evict the receiver's lines, and
hardware prefetchers pull lines the victim never touched.  This module
injects those effects into the *measurement* layer — a
:class:`NoiseModel` perturbs what a receiver observes, never the
simulated run itself — so that a sweep over noise intensity and trial
count stays bit-reproducible at any worker count.

Determinism is load-bearing (the harness caches results by content
hash), so randomness comes from :class:`SplitMix64` — a tiny, fully
specified PRNG — seeded via SHA-256 (:func:`derive_seed`) rather than
from :mod:`random`, whose stream Python does not guarantee stable across
versions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence, Tuple, Union

_MASK64 = (1 << 64) - 1


def derive_seed(*parts) -> int:
    """Deterministic 64-bit seed from string-able parts.

    Independent of PYTHONHASHSEED, interpreter and platform, like
    :func:`repro.harness.spec.stable_seed` (which feeds the 32-bit trial
    seeds this function typically expands on).
    """
    digest = hashlib.sha256(
        "\x1f".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big")


class SplitMix64:
    """SplitMix64 PRNG (Steele et al.) — stable across Python versions.

    Only the handful of draws the noise models need are implemented;
    modulo reduction is used for ranges (the bias is irrelevant at our
    range sizes and keeps the implementation obviously reproducible).
    """

    def __init__(self, seed: int):
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def random(self) -> float:
        """Uniform float in [0, 1) with 53 bits of precision."""
        return (self.next_u64() >> 11) / float(1 << 53)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        if high < low:
            raise ValueError("empty range")
        return low + self.next_u64() % (high - low + 1)


@dataclass(frozen=True)
class NoiseDraw:
    """One trial's worth of sampled noise.

    ``evicted`` / ``polluted`` are line addresses the receiver must
    observe as co-runner-evicted (slow) / prefetcher-polluted (fast);
    ``jitters`` holds one signed timing offset per probe index.
    """

    evicted: frozenset
    polluted: frozenset
    jitters: Tuple[int, ...]

    def jitter(self, index: int) -> int:
        return self.jitters[index] if self.jitters else 0


#: The silent draw, used when no noise model is configured.
NO_NOISE = NoiseDraw(evicted=frozenset(), polluted=frozenset(), jitters=())


@dataclass(frozen=True)
class NoiseModel:
    """Per-trial measurement noise, sampled line-by-line.

    jitter:
        Maximum absolute timing offset (cycles) added to each measured
        latency, drawn uniformly from [-jitter, +jitter].
    evict_rate:
        Probability that a monitored line is evicted by a co-runner
        between transmit and probe (observed at memory latency).
    pollute_rate:
        Probability that a monitored line is pulled into the cache by a
        prefetcher-like co-runner (observed at hit latency) even though
        the victim never touched it.
    """

    jitter: int = 0
    evict_rate: float = 0.0
    pollute_rate: float = 0.0

    def __post_init__(self):
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        for name in ("evict_rate", "pollute_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.evict_rate + self.pollute_rate > 1.0:
            raise ValueError("evict_rate + pollute_rate must not exceed 1")

    @classmethod
    def from_spec(cls, spec: Union[None, "NoiseModel", Mapping]) \
            -> Optional["NoiseModel"]:
        """Build from a JSON-able mapping (harness trial params) or pass
        through an existing model; ``None``/empty means no noise."""
        if spec is None:
            return None
        if isinstance(spec, cls):
            return spec
        unknown = set(spec) - {"jitter", "evict_rate", "pollute_rate"}
        if unknown:
            raise ValueError(f"unknown noise spec keys: {sorted(unknown)}")
        model = cls(**dict(spec))
        return model if model.is_noisy else None

    def to_spec(self) -> dict:
        return {"jitter": self.jitter, "evict_rate": self.evict_rate,
                "pollute_rate": self.pollute_rate}

    @property
    def is_noisy(self) -> bool:
        return bool(self.jitter or self.evict_rate or self.pollute_rate)

    def draw(self, rng: SplitMix64, lines: Sequence[int],
             n_indices: int) -> NoiseDraw:
        """Sample one trial of noise over the receiver's monitored lines.

        One uniform draw per line decides evicted / polluted / clean, so
        the two effects are mutually exclusive per line; jitter is drawn
        per probe index.  The draw order is fixed (lines in the given
        order, then jitters), making the stream a pure function of the
        rng seed.
        """
        evicted = set()
        polluted = set()
        if self.evict_rate or self.pollute_rate:
            for line in lines:
                sample = rng.random()
                if sample < self.evict_rate:
                    evicted.add(line)
                elif sample < self.evict_rate + self.pollute_rate:
                    polluted.add(line)
        if self.jitter:
            jitters = tuple(rng.randint(-self.jitter, self.jitter)
                            for _ in range(n_indices))
        else:
            jitters = ()
        return NoiseDraw(evicted=frozenset(evicted),
                         polluted=frozenset(polluted), jitters=jitters)

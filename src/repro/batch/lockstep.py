"""Fleet-style lockstep driver for :class:`~repro.multicore.system.MultiCoreSystem`.

Same global-clock semantics as ``MultiCoreSystem.run`` — install
completed shared fills, step each non-halted slot in slot order, respawn
restart slots, skip globally when every core is idle — but driven over
flat per-slot columns (core handles, bound steppers, restart flags)
hoisted out of the cycle loop, so the N-core inner loop pays list
indexing instead of per-cycle attribute traversal.  Respawns refresh the
columns in place; the step order and every simulator call are identical
to the object-walking loop, which is what keeps the two backends
bit-identical (pinned by ``tests/batch/test_lockstep.py``).
"""

from __future__ import annotations


def run_lockstep_fleet(system, max_cycles: int = 5_000_000,
                       primary: int = 0):
    """Drive ``system`` to completion; returns the primary core.

    Callers go through ``MultiCoreSystem.run(..., backend="fleet")``,
    which validates the slot list before dispatching here.
    """
    slots = system.slots
    shared = system.shared
    primary_slot = slots[primary]
    # Per-slot columns, refreshed on respawn.
    cores = [slot.core for slot in slots]
    steps = [core.step for core in cores]
    restart = [slot.restart and slot is not primary_slot
               for slot in slots]
    indices = tuple(range(len(slots)))
    primary_core = cores[primary]
    apply_completed = shared.apply_completed
    now = system.cycle
    while now < max_cycles:
        apply_completed(now)
        active = False
        for i in indices:
            core = cores[i]
            if core.halted:
                if not restart[i]:
                    continue
                core = slots[i].respawn(now)
                cores[i] = core
                steps[i] = core.step
                active = True
            core.cycle = now
            steps[i]()
            if core._activity:
                active = True
        if primary_core.halted:
            break
        now += 1
        if active:
            continue
        # Global cycle skip: every core idle — jump to the earliest
        # cycle at which any of them can make progress.
        skip_to = None
        for i in indices:
            core = cores[i]
            if core.halted:
                continue
            event = core._next_event()
            if event is not None and (skip_to is None or
                                      event < skip_to):
                skip_to = event
        if skip_to is None:
            break              # system quiescent: nothing can happen
        if skip_to > now:
            now = skip_to
    system.cycle = now
    for slot in slots:
        slot.core.stats.cycles = slot.core.cycle
    return primary_slot.core

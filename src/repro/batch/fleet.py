"""Struct-of-arrays fleet kernel: advance N cores per step call.

A :class:`FleetCore` holds N independent :class:`~repro.pipeline.core.Core`
instances as *lanes* and advances every live lane in a single pass per
:meth:`FleetCore.step` call.  The per-lane scheduler state lives in flat
parallel columns indexed by lane id — core handles, bound ``step`` /
``_next_event`` methods, cycle ceilings, completion flags, result slots —
so the driver loop touches plain list slots instead of re-resolving
attributes and re-entering ``Core.run`` per instance.  The
micro-architectural state itself (ROB fields, ``pending_srcs`` wakeup
counters, ``_ready`` heaps, MSHR/fill queues) stays inside each lane's
existing core objects: that is what makes lane behaviour *provably*
identical to a solo run — the fleet calls exactly the same stage code in
exactly the same order, it only owns the outer run loop.

Invariants (pinned by ``tests/batch/``):

* **Bit identity.**  Every lane produces a ``CoreStats`` equal to what a
  solo ``Core.run(max_cycles)`` on an identically-built core produces —
  including the quiescent-break and cycle-ceiling edge cases.  The
  per-lane advance below is ``Core.run``'s loop verbatim, split into
  budgeted segments.
* **Segment safety.**  A lane may be paused after any iteration and
  resumed later (other lanes advance in between); cores share no
  mutable state, so interleaving cannot change any lane's trajectory.
* **Ragged retirement.**  Lanes finish at different times.  A finished
  lane has ``stats.cycles`` sealed immediately (exactly where
  ``Core.run`` seals it) and stops consuming budget; when a ``width``
  cap bounds the number of live lanes, a queued lane is admitted the
  moment one retires.
"""

from __future__ import annotations

from typing import List, Optional

#: Cycles each live lane advances per ``step`` call.  Large enough to
#: amortize the per-lane pass overhead, small enough that ragged
#: completion backfills promptly.
DEFAULT_BUDGET = 4096

#: Default cap on concurrently-live lanes (bounds peak memory: each live
#: lane holds a full core + hierarchy).
DEFAULT_WIDTH = 8


class FleetCore:
    """Advance a fleet of independent cores in budgeted passes.

    ``width`` caps how many lanes are live at once; further lanes queue
    and are admitted as earlier lanes retire (ragged backfill).  ``None``
    means unbounded — every lane is live from the start.
    """

    def __init__(self, width: Optional[int] = DEFAULT_WIDTH):
        self.width = None if width is None else max(1, width)
        # Parallel columns, indexed by lane id.
        self._cores: List = []         # Core handles (the lane state root)
        self._steps: List = []         # bound Core.step per lane
        self._nexts: List = []         # bound Core._next_event per lane
        self._limits: List[int] = []   # max_cycles ceiling per lane
        self._done: List[bool] = []    # sealed flags per lane
        self._live: List[int] = []     # admitted, unfinished lane ids
        self._queue: List[int] = []    # not yet admitted (width overflow)

    # ------------------------------------------------------------ build

    def add_lane(self, core, max_cycles: int = 5_000_000) -> int:
        """Register one core as a lane; returns its lane id."""
        lane = len(self._cores)
        self._cores.append(core)
        self._steps.append(core.step)
        self._nexts.append(core._next_event)
        self._limits.append(max_cycles)
        self._done.append(False)
        if self.width is None or len(self._live) < self.width:
            self._live.append(lane)
        else:
            self._queue.append(lane)
        return lane

    def __len__(self) -> int:
        return len(self._cores)

    @property
    def remaining(self) -> int:
        """Lanes not yet retired (live + queued)."""
        return len(self._live) + len(self._queue)

    def core(self, lane: int):
        """The (possibly still running) core behind one lane."""
        return self._cores[lane]

    def done(self, lane: int) -> bool:
        return self._done[lane]

    # ------------------------------------------------------------ drive

    def step(self, budget: int = DEFAULT_BUDGET) -> int:
        """One pass: advance every live lane up to ``budget`` cycles.

        Returns the number of unfinished lanes.  The inner loop is
        ``Core.run`` verbatim (same guards, same seal), restricted to
        ``budget`` iterations so lanes interleave.
        """
        cores = self._cores
        steps = self._steps
        nexts = self._nexts
        limits = self._limits
        survivors: List[int] = []
        for lane in self._live:
            core = cores[lane]
            step = steps[lane]
            next_event = nexts[lane]
            limit = limits[lane]
            n = budget
            finished = False
            # --- Core.run loop, budget-segmented -------------------
            while n > 0:
                if core.halted or core.cycle >= limit:
                    finished = True
                    break
                step()
                if not core._activity and not core.halted:
                    skip_to = next_event()
                    if skip_to is None:
                        finished = True     # quiescent: nothing can happen
                        break
                    if skip_to > core.cycle:
                        core.cycle = skip_to
                n -= 1
            else:
                # Budget exhausted mid-run: re-check the run condition so
                # a lane that halted on its last budgeted cycle retires
                # now instead of surviving one spurious extra pass.
                if core.halted or core.cycle >= limit:
                    finished = True
            # -------------------------------------------------------
            if finished:
                core.stats.cycles = core.cycle      # seal, as Core.run does
                self._done[lane] = True
                if self._queue:                     # ragged backfill
                    survivors.append(self._queue.pop(0))
            else:
                survivors.append(lane)
        self._live = survivors
        return len(survivors) + len(self._queue)

    def run(self, budget: int = DEFAULT_BUDGET) -> List:
        """Step until every lane retires; returns the cores, lane order."""
        while self.step(budget):
            pass
        return list(self._cores)


def run_fleet(cores_with_limits, width: Optional[int] = DEFAULT_WIDTH,
              budget: int = DEFAULT_BUDGET) -> List:
    """Convenience: run ``[(core, max_cycles), ...]`` as one fleet."""
    fleet = FleetCore(width=width)
    for core, max_cycles in cores_with_limits:
        fleet.add_lane(core, max_cycles=max_cycles)
    return fleet.run(budget=budget)

"""``executor="fleet"``: run a sweep's core-runs as one batched fleet.

:class:`FleetExecutor` implements the :class:`~repro.harness.executor.Executor`
protocol.  It decomposes the *fleetable* trial kinds — ``ipc`` (two core
runs) and ``run`` (one) — into run specs, executes every distinct spec
through one :class:`~repro.batch.fleet.FleetCore`, then assembles the
per-trial records through the exact record builders the serial runner
uses (:func:`repro.harness.runner.ipc_record` /
:func:`~repro.harness.runner.workload_record`).  Non-fleetable kinds
(attack, extract, window, taint — their inner loops live behind
receivers and topologies, not bare workload runs) fall back to the
serial trial runner, so ``execute`` is total over every sweep.

Byte-identity with :class:`~repro.harness.executor.SerialExecutor` holds
by construction: the same cache plan, the same record builders over
cores built by the same registry calls, reassembled in trial order.  The
fleet-vs-serial differential over every quick-tier preset pins it.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from ..harness.executor import (Executor, SweepResult, _seal, _timed_run,
                                plan_sweep)
from ..harness.runner import (TrialError, ipc_record, run_trial,
                              workload_record)
from ..harness.spec import Sweep, Trial
from ..obs.metrics import get_registry
from .fleet import DEFAULT_BUDGET, DEFAULT_WIDTH
from .runs import FleetRuns

#: Trial kinds the fleet kernel can decompose into bare core runs.
FLEET_KINDS = frozenset({"ipc", "run"})


def _plan_ipc(trial: Trial, runs: FleetRuns):
    params = trial.params
    max_cycles = params.get("max_cycles", 5_000_000)
    base_key = runs.add(params["workload"],
                        params.get("baseline", "none"),
                        params.get("baseline_kwargs", {}),
                        params.get("config_base", "paper"),
                        params.get("config"), max_cycles)
    cont_key = runs.add(params["workload"],
                        params.get("contender", "original"),
                        params.get("contender_kwargs", {}),
                        params.get("config_base", "paper"),
                        params.get("config"), max_cycles)
    return base_key, cont_key


def _plan_run(trial: Trial, runs: FleetRuns):
    params = trial.params
    key = runs.add(params["workload"],
                   params.get("runahead", "none"),
                   params.get("runahead_kwargs", {}),
                   params.get("config_base", "paper"),
                   params.get("config"),
                   params.get("max_cycles", 5_000_000))
    return (key,)


def _assemble(trial: Trial, runs: FleetRuns, keys) -> Dict:
    if trial.kind == "ipc":
        base_key, cont_key = keys
        workload, baseline, base = runs.core(base_key)
        _, contender, cont = runs.core(cont_key)
        return ipc_record(workload, baseline, contender, base, cont)
    (key,) = keys
    workload, controller, core = runs.core(key)
    return workload_record(workload, controller, core)


class FleetExecutor(Executor):
    """Batch every fleetable trial's core-runs through one fleet.

    ``width`` caps concurrently-live lanes (memory bound), ``dedup``
    computes each distinct run spec once per batch (purity — the
    in-memory analogue of the result cache), ``budget`` sets the cycles
    each lane advances per fleet pass.
    """

    def __init__(self, width: Optional[int] = DEFAULT_WIDTH,
                 dedup: bool = True, budget: int = DEFAULT_BUDGET):
        self.width = width
        self.dedup = dedup
        self.budget = budget

    def execute(self, sweep: Sweep, cache="auto", force: bool = False,
                progress: Optional[Callable[[str], None]] = None) \
            -> SweepResult:
        started = time.monotonic()
        plan = plan_sweep(sweep, cache=cache, force=force,
                          progress=progress)
        runs = FleetRuns(width=self.width, dedup=self.dedup,
                         budget=self.budget)
        keys_by_index: Dict[int, tuple] = {}
        for index, trial in plan.pending:
            if trial.kind not in FLEET_KINDS:
                continue
            try:
                planner = _plan_ipc if trial.kind == "ipc" else _plan_run
                keys_by_index[index] = planner(trial, runs)
            except Exception as exc:
                raise TrialError(
                    f"trial {trial.label!r} failed: {exc}") from exc
        if len(runs):
            begin = time.monotonic()
            runs.execute()
            get_registry().histogram(
                "repro_fleet_batch_seconds",
                "Wall time of one fleet batch").observe(
                time.monotonic() - begin)
        for index, trial in plan.pending:
            keys = keys_by_index.get(index)
            if keys is None:
                plan.finish(index, trial, _timed_run(trial))
                continue
            try:
                result = _assemble(trial, runs, keys)
            except TrialError:
                raise
            except Exception as exc:
                raise TrialError(
                    f"trial {trial.label!r} failed: {exc}") from exc
            plan.finish(index, trial, result)
        return _seal(plan, workers=1, started=started)


def fleet_trial_runner(trial: Trial) -> Dict:
    """Single-trial entry point for campaign workers
    (``repro campaign worker --executor fleet``): fleetable kinds run
    their core-runs as a (small) fleet, everything else falls back to
    the serial :func:`~repro.harness.runner.run_trial`."""
    if trial.kind not in FLEET_KINDS:
        return run_trial(trial)
    runs = FleetRuns()
    try:
        planner = _plan_ipc if trial.kind == "ipc" else _plan_run
        keys = planner(trial, runs)
        runs.execute()
        return _assemble(trial, runs, keys)
    except TrialError:
        raise
    except Exception as exc:
        raise TrialError(f"trial {trial.label!r} failed: {exc}") from exc

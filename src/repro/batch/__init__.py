"""Batched fleet execution: advance N cores per step call.

``repro.batch`` is the struct-of-arrays fast path of ROADMAP item 1:

* :class:`~repro.batch.fleet.FleetCore` — the kernel: N independent
  lanes advanced in a single budgeted pass per ``step`` call, with
  ragged retirement and width-capped admission;
* :class:`~repro.batch.runs.FleetRuns` — run-spec planning and
  cross-lane deduplication for bare workload runs;
* :class:`~repro.batch.executor.FleetExecutor` — the ``Executor``
  implementation behind ``executor="fleet"`` (CLI ``--executor fleet``);
* :func:`~repro.batch.lockstep.run_lockstep_fleet` — the fleet backend
  of ``MultiCoreSystem.run(backend="fleet")``.

Every path is bit-identical to its serial counterpart; see
``docs/PERFORMANCE.md`` for the layout, the invariants, and the
measured ``cores`` scaling axis in ``BENCH_core.json``.
"""

from .executor import FLEET_KINDS, FleetExecutor, fleet_trial_runner
from .fleet import DEFAULT_BUDGET, DEFAULT_WIDTH, FleetCore, run_fleet
from .lockstep import run_lockstep_fleet
from .runs import FleetRuns, run_spec

__all__ = [
    "DEFAULT_BUDGET",
    "DEFAULT_WIDTH",
    "FLEET_KINDS",
    "FleetCore",
    "FleetExecutor",
    "FleetRuns",
    "fleet_trial_runner",
    "run_fleet",
    "run_lockstep_fleet",
    "run_spec",
]

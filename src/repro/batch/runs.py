"""Plan single-core workload runs and execute them as one fleet.

The harness runs cores through :meth:`repro.workloads.base.Workload.run`
— a pure function of (workload, controller spec, config, cycle ceiling).
:class:`FleetRuns` collects those runs as *specs*, builds one fresh core
per **distinct** spec (exactly the objects ``Workload.run`` would
build), advances them all through a :class:`~repro.batch.fleet.FleetCore`,
and hands back finished cores by spec key.

Deduplication is the batch-level win the executor cache already relies
on: the simulator is deterministic and trials are pure, so two lanes
with identical specs are the *same* computation — the fleet computes it
once and serves both.  Records assembled from a deduped core are
bit-identical to records from a repeated run by that same purity
argument (it is the in-memory analogue of the on-disk result cache).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..harness.registry import get_workload, make_config, make_controller
from ..obs.metrics import get_registry
from ..pipeline.core import Core
from .fleet import DEFAULT_BUDGET, DEFAULT_WIDTH, FleetCore


def run_spec(workload: str, runahead: str, runahead_kwargs: Optional[dict],
             config_base: str, config: Optional[dict],
             max_cycles: int) -> str:
    """Canonical key for one core run — every knob that affects it."""
    return json.dumps({
        "workload": workload,
        "runahead": runahead,
        "runahead_kwargs": runahead_kwargs or {},
        "config_base": config_base,
        "config": config,
        "max_cycles": max_cycles,
    }, sort_keys=True)


class FleetRuns:
    """Collect run specs, execute distinct ones as a fleet, serve cores."""

    def __init__(self, width: Optional[int] = DEFAULT_WIDTH,
                 dedup: bool = True, budget: int = DEFAULT_BUDGET):
        self.width = width
        self.dedup = dedup
        self.budget = budget
        self._specs: Dict[str, dict] = {}       # key -> parsed spec
        self._order: List[str] = []             # first-appearance order
        self._requests = 0
        # key -> (workload, controller, config) resolved at add() time
        self._resolved: Dict[str, Tuple] = {}
        # key -> (workload, controller, core); filled by execute()
        self._runs: Dict[str, Tuple] = {}

    def add(self, workload: str, runahead: str,
            runahead_kwargs: Optional[dict], config_base: str,
            config: Optional[dict], max_cycles: int) -> str:
        """Register one needed run; returns its spec key.

        Registry names resolve here, not in :meth:`execute`, so an
        unknown workload/controller raises while the requesting trial
        is still on the stack (the executor attributes it in its
        :class:`~repro.harness.runner.TrialError`, same as serial).
        """
        spec = run_spec(workload, runahead, runahead_kwargs, config_base,
                        config, max_cycles)
        self._requests += 1
        # With dedup off every request gets its own lane, so salt the
        # key with the request ordinal to keep identical specs apart.
        key = spec if self.dedup else f"{self._requests}:{spec}"
        if key not in self._specs:
            resolved = (get_workload(workload),
                        make_controller(runahead,
                                        **(runahead_kwargs or {})),
                        make_config(config_base, config))
            self._order.append(key)
            self._specs[key] = json.loads(spec)
            self._resolved[key] = resolved
        return key

    def __len__(self) -> int:
        return len(self._order)

    def execute(self) -> None:
        """Build one core per distinct spec and run them as a fleet."""
        if not self._order:
            return
        fleet = FleetCore(width=self.width)
        lanes: List[Tuple[str, Tuple]] = []
        for key in self._order:
            spec = self._specs[key]
            workload, controller, config = self._resolved[key]
            # Exactly the core Workload.run builds for this spec.
            program, image, sp = workload.materialize()
            core = Core(program, memory_image=image, config=config,
                        runahead=controller, initial_sp=sp,
                        warm_icache=True)
            fleet.add_lane(core, max_cycles=spec["max_cycles"])
            lanes.append((key, (workload, controller, core)))
        fleet.run(budget=self.budget)
        for key, run in lanes:
            self._runs[key] = run
        registry = get_registry()
        registry.counter(
            "repro_fleet_lanes_total",
            "Core runs handled by the fleet kernel, by outcome",
            labels={"outcome": "computed"}).inc(len(lanes))
        deduped = self._requests - len(lanes)
        if deduped > 0:
            registry.counter(
                "repro_fleet_lanes_total",
                "Core runs handled by the fleet kernel, by outcome",
                labels={"outcome": "deduped"}).inc(deduped)

    def core(self, key: str) -> Tuple:
        """Finished ``(workload, controller, core)`` for one spec key.

        Raises exactly what ``Workload.run`` raises for a run that hit
        its cycle ceiling, so fleet-assembled trial errors match serial.
        """
        workload, controller, core = self._runs[key]
        if not core.halted:
            raise RuntimeError(f"workload {workload.name} did not halt")
        return workload, controller, core

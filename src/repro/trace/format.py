"""The trace format: events, the in-memory ``Trace``, and file I/O.

A trace is an ordered stream of :class:`TraceEvent` records — the
dynamic loads, stores and conditional-branch outcomes one execution
produced — plus a name and a free-form ``meta`` dict recording how it
was obtained (generator parameters, source workload, truncation).  It
is the interchange currency of :mod:`repro.trace`: the recorder
(:func:`repro.trace.record.record_trace`) produces one from any program
the interpreter can run, the synthetic generators
(:mod:`repro.trace.synthetic`) fabricate SPEC-like ones directly, and
:class:`repro.trace.replay.TraceReplayWorkload` lowers one back into a
runnable program.

On disk a trace is a small line-oriented text file (version-tagged, hex
addresses, one event per line) so recorded traces can be committed,
diffed and shipped between machines::

    #repro-trace v1
    #name mcf
    #meta {"source": "workload:mcf"}
    L 9c 100040
    S a0 108040
    B a8 1

``L``/``S`` rows carry ``pc address``, ``B`` rows ``pc taken``; a ``D``
row is a load whose *address depended on an earlier load's value* in
the source execution (a pointer chase) — replay re-serializes those
behind the previous load so runahead sees them as unprefetchable, just
like mcf's next-pointer walk.  The format stores *word-granular*
accesses; cache-set geometry is derived, never stored, so one trace
replays faithfully on any hierarchy whose line size divides the
recorded alignment.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

LOAD = "load"
STORE = "store"
BRANCH = "branch"

KINDS = (LOAD, STORE, BRANCH)

#: One-letter file tags, bidirectional.  ``D`` is a dependent load.
_TAG_OF = {LOAD: "L", STORE: "S", BRANCH: "B"}
_KIND_OF = {tag: kind for kind, tag in _TAG_OF.items()}
_KIND_OF["D"] = LOAD

FORMAT_HEADER = "#repro-trace v1"


class TraceFormatError(ValueError):
    """Raised on malformed trace files or invalid events."""


@dataclass(frozen=True)
class TraceEvent:
    """One dynamic event: a load, a store, or a conditional branch.

    ``pc`` is the instruction address in the *source* program (kept for
    provenance and per-pc statistics; replay assigns new pcs).  Memory
    events carry ``address`` (word-aligned byte address); branch events
    carry ``taken``.  A load with ``depends=True`` computed its address
    from an earlier load's value (pointer chase): replay serializes it
    behind the previous load so its address is unknown — INV, in
    runahead terms — until that load returns.
    """

    pc: int
    kind: str
    address: int = 0
    taken: bool = False
    depends: bool = False

    def __post_init__(self):
        if self.kind not in KINDS:
            raise TraceFormatError(f"unknown event kind {self.kind!r}")
        if self.kind != BRANCH and self.address % 8:
            raise TraceFormatError(
                f"misaligned {self.kind} address {self.address:#x}")
        if self.depends and self.kind != LOAD:
            raise TraceFormatError(
                f"depends is only meaningful on loads, not {self.kind}")

    @property
    def is_memory(self) -> bool:
        return self.kind != BRANCH


@dataclass
class Trace:
    """An ordered event stream with a name and provenance metadata."""

    name: str
    events: List[TraceEvent] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- derived views ----------------------------------------------------

    def memory_events(self) -> List[TraceEvent]:
        return [e for e in self.events if e.is_memory]

    def branch_events(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == BRANCH]

    def address_stream(self) -> List[Tuple[str, int]]:
        """The (kind, address) sequence of all memory events."""
        return [(e.kind, e.address) for e in self.events if e.is_memory]

    def taken_stream(self) -> List[bool]:
        """The taken/not-taken outcome sequence of all branch events."""
        return [e.taken for e in self.events if e.kind == BRANCH]

    def footprint_lines(self, line_bytes: int = 64) -> int:
        """Number of distinct cache lines the memory events touch."""
        return len({e.address // line_bytes for e in self.events
                    if e.is_memory})

    def set_stream(self, n_sets: int, line_bytes: int = 64) -> List[int]:
        """Cache-set index per memory event for a given geometry."""
        return [(e.address // line_bytes) & (n_sets - 1)
                for e in self.events if e.is_memory]

    def counts(self) -> Dict[str, int]:
        out = {kind: 0 for kind in KINDS}
        for event in self.events:
            out[event.kind] += 1
        return out

    def dependent_load_count(self) -> int:
        return sum(1 for e in self.events if e.depends)

    def taken_rate(self) -> float:
        branches = self.taken_stream()
        if not branches:
            return 0.0
        return sum(branches) / len(branches)

    def max_address(self) -> int:
        """Highest byte address any memory event touches (0 if none)."""
        return max((e.address for e in self.events if e.is_memory),
                   default=0)

    def digest(self) -> str:
        """Content hash of the event stream (name/meta excluded).

        Used as the replay build-cache key: two traces with identical
        events lower to identical programs regardless of provenance.
        """
        hasher = hashlib.sha256()
        for event in self.events:
            hasher.update(f"{event.kind};{event.pc:x};{event.address:x};"
                          f"{int(event.taken)};"
                          f"{int(event.depends)}\n".encode())
        return hasher.hexdigest()

    def summary(self) -> str:
        """One human-readable block (the ``repro trace info`` payload)."""
        counts = self.counts()
        lines = [
            f"trace {self.name!r}: {len(self.events)} events",
            f"  loads    : {counts[LOAD]} "
            f"({self.dependent_load_count()} address-dependent)",
            f"  stores   : {counts[STORE]}",
            f"  branches : {counts[BRANCH]} "
            f"(taken rate {self.taken_rate():.2f})",
            f"  footprint: {self.footprint_lines()} distinct 64B lines "
            f"({self.footprint_lines() * 64} bytes)",
        ]
        if self.meta:
            lines.append(f"  meta     : "
                         f"{json.dumps(self.meta, sort_keys=True)}")
        return "\n".join(lines)

    # -- file I/O ---------------------------------------------------------

    def dumps(self) -> str:
        """Serialize to the v1 text format."""
        out = [FORMAT_HEADER, f"#name {self.name}"]
        if self.meta:
            out.append(f"#meta {json.dumps(self.meta, sort_keys=True)}")
        for event in self.events:
            if event.kind == BRANCH:
                out.append(f"B {event.pc:x} {int(event.taken)}")
            else:
                tag = "D" if event.depends else _TAG_OF[event.kind]
                out.append(f"{tag} {event.pc:x} {event.address:x}")
        return "\n".join(out) + "\n"

    def save(self, path) -> None:
        with open(path, "w", encoding="ascii") as handle:
            handle.write(self.dumps())

    @classmethod
    def loads(cls, text: str) -> "Trace":
        lines = text.splitlines()
        if not lines or lines[0].strip() != FORMAT_HEADER:
            raise TraceFormatError(
                f"not a repro trace (expected {FORMAT_HEADER!r} header)")
        name = "trace"
        meta: Dict[str, object] = {}
        events: List[TraceEvent] = []
        for lineno, line in enumerate(lines[1:], start=2):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#name "):
                name = line[len("#name "):].strip()
                continue
            if line.startswith("#meta "):
                meta = json.loads(line[len("#meta "):])
                continue
            if line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] not in _KIND_OF:
                raise TraceFormatError(
                    f"line {lineno}: malformed event {line!r}")
            tag, pc_hex, payload = parts
            try:
                pc = int(pc_hex, 16)
                kind = _KIND_OF[tag]
                if kind == BRANCH:
                    taken = bool(int(payload))
                    events.append(TraceEvent(pc=pc, kind=kind, taken=taken))
                else:
                    events.append(TraceEvent(pc=pc, kind=kind,
                                             address=int(payload, 16),
                                             depends=tag == "D"))
            except ValueError as exc:
                raise TraceFormatError(
                    f"line {lineno}: {exc}") from exc
        return cls(name=name, events=events, meta=meta)

    @classmethod
    def load(cls, path) -> "Trace":
        with open(path, encoding="ascii") as handle:
            return cls.loads(handle.read())


def load_trace(path) -> Trace:
    """Read a trace file (the module-level spelling of ``Trace.load``)."""
    return Trace.load(path)


def make_trace(name: str, events: Iterable[TraceEvent],
               meta: Optional[Dict[str, object]] = None) -> Trace:
    """Build a trace from an event iterable (generator convenience)."""
    return Trace(name=name, events=list(events), meta=dict(meta or {}))

"""Synthetic SPEC-like trace generators.

Each generator fabricates a :class:`~repro.trace.format.Trace` with the
dominant access *structure* of a benchmark family from the runahead
literature, without any recorded input:

===========  =========================================================
mcf-style    pointer chase over a shuffled node graph (dependent
             loads — unprefetchable) plus independent strided arc
             reads that supply the memory-level parallelism
lbm-style    multi-stream sequential sweep, loads + a store stream —
             regular independent misses, fully predictable branches
gcc-style    mixed: short sequential runs at random offsets, mixed
             loads/stores, high branch entropy
zipfian      hot/cold skew: a small hot line set takes most accesses,
             the cold tail sprays the remaining footprint
===========  =========================================================

Every generator is a pure function of its parameters (deterministic
SplitMix64 streams seeded via :func:`repro.channel.noise.derive_seed`),
so two trials naming the same family/parameters replay byte-identical
programs — which is what lets harness results stay cacheable and
worker-count invariant.

Shared parameter vocabulary:

footprint_bytes
    Total byte span the address stream covers (line-granular).  The
    paper machine's L3 holds 4 MiB in 8192 sets; a 512 KiB footprint
    touches every L3 set once, 1 MiB twice.
events
    Total trace length (memory events + branch events).
branch_entropy
    Probability that a branch outcome deviates from its biased
    direction: 0.0 = perfectly predictable loop branch, 0.5 = coin
    flip.
seed
    Base of the generator's private deterministic random stream.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..channel.noise import SplitMix64, derive_seed
from ..isa.memory_image import DEFAULT_BASE
from .format import BRANCH, LOAD, STORE, Trace, TraceEvent

_LINE = 64


def _meta(family: str, **params) -> Dict[str, object]:
    meta = {"family": family}
    meta.update(params)
    return meta


def pointer_chase_trace(events: int = 1600,
                        footprint_bytes: int = 30 * 1024,
                        arcs: int = 4,
                        arc_stride_lines: int = 1,
                        arc_span_lines: int = 64,
                        branch_entropy: float = 0.08,
                        seed: int = 11,
                        name: str = "mcf") -> Trace:
    """mcf-style: dependent pointer chase + independent arc streams.

    Node lines are a random permutation cycle over the footprint, so
    consecutive chase loads land in unrelated sets; each visit also
    reads ``arcs`` arc-array streams (placed back to back above the
    node footprint, ``arc_span_lines`` apart, each marching at
    ``arc_stride_lines``) and ends in a mostly-taken loop branch.

    The defaults mirror the Fig. 7 mcf kernel at trace scale: a compact
    node graph (30 KiB — real mcf's hot node set is small) chased
    serially, with four arc arrays laid out contiguously just above it.
    Because the graph and arcs sit low in the address space, their
    combined working set *aliases the low cache-set range densely* —
    the structured, set-contiguous pressure that makes a chase-shaped
    co-runner interfere with receivers in ways a calibration run cannot
    separate from signal (see the ``trace_pressure_sweep`` preset).
    """
    rng = SplitMix64(derive_seed("trace", name, seed))
    n_lines = max(2, footprint_bytes // _LINE)
    order = list(range(n_lines))
    for i in range(len(order) - 1, 0, -1):
        j = rng.next_u64() % (i + 1)
        order[i], order[j] = order[j], order[i]
    arc_base = DEFAULT_BASE + n_lines * _LINE
    out = []
    visit = 0
    first = True
    while len(out) < events:
        node = order[visit % n_lines]
        out.append(TraceEvent(pc=0, kind=LOAD,
                              address=DEFAULT_BASE + node * _LINE,
                              depends=not first))
        first = False
        for arc in range(arcs):
            if len(out) >= events:
                break
            out.append(TraceEvent(
                pc=0, kind=LOAD,
                address=(arc_base + arc * arc_span_lines * _LINE +
                         visit * arc_stride_lines * _LINE)))
        if len(out) < events:
            taken = rng.random() >= branch_entropy
            out.append(TraceEvent(pc=0, kind=BRANCH, taken=taken))
        visit += 1
    return Trace(name=name, events=out,
                 meta=_meta("mcf", events=events,
                            footprint_bytes=footprint_bytes, arcs=arcs,
                            arc_stride_lines=arc_stride_lines,
                            arc_span_lines=arc_span_lines,
                            branch_entropy=branch_entropy, seed=seed))


def streaming_trace(events: int = 1600,
                    footprint_bytes: int = 512 * 1024,
                    streams: int = 2,
                    stride_bytes: int = _LINE,
                    branch_entropy: float = 0.0,
                    seed: int = 12,
                    name: str = "stream") -> Trace:
    """lbm-style: parallel sequential sweeps, one of them a store stream.

    ``streams`` pointers march in lockstep through disjoint windows of
    the footprint at ``stride_bytes``; the last stream stores, the rest
    load.  One loop branch per element, taken with probability
    ``1 - branch_entropy`` (0.0 = the classic fully-biased stream loop).
    """
    rng = SplitMix64(derive_seed("trace", name, seed))
    streams = max(1, streams)
    window = max(stride_bytes, footprint_bytes // streams)
    out = []
    element = 0
    while len(out) < events:
        for stream in range(streams):
            if len(out) >= events:
                break
            addr = (DEFAULT_BASE + stream * window +
                    (element * stride_bytes) % window)
            kind = STORE if stream == streams - 1 else LOAD
            out.append(TraceEvent(pc=0, kind=kind, address=addr))
        if len(out) < events:
            taken = rng.random() >= branch_entropy if branch_entropy \
                else True
            out.append(TraceEvent(pc=0, kind=BRANCH, taken=taken))
        element += 1
    return Trace(name=name, events=out,
                 meta=_meta("stream", events=events,
                            footprint_bytes=footprint_bytes,
                            streams=streams, stride_bytes=stride_bytes,
                            branch_entropy=branch_entropy, seed=seed))


def mixed_trace(events: int = 1600,
                footprint_bytes: int = 256 * 1024,
                min_run: int = 2, max_run: int = 12,
                store_fraction: float = 0.25,
                branch_entropy: float = 0.35,
                seed: int = 13,
                name: str = "gcc") -> Trace:
    """gcc-style: short sequential word runs at random offsets.

    Each burst starts at a random line, walks ``min_run..max_run``
    consecutive words (the stride mix: mostly 8 B with line-crossing
    reuse), mixes stores in at ``store_fraction``, and ends in a
    high-entropy branch — the branch-predictor-hostile half of the
    family table.
    """
    rng = SplitMix64(derive_seed("trace", name, seed))
    n_words = max(max_run + 1, footprint_bytes // 8)
    out = []
    while len(out) < events:
        start = rng.next_u64() % (n_words - max_run)
        run = rng.randint(min_run, max_run)
        for i in range(run):
            if len(out) >= events:
                break
            kind = STORE if rng.random() < store_fraction else LOAD
            out.append(TraceEvent(pc=0, kind=kind,
                                  address=DEFAULT_BASE + (start + i) * 8))
        if len(out) < events:
            taken = rng.random() >= branch_entropy
            out.append(TraceEvent(pc=0, kind=BRANCH, taken=taken))
    return Trace(name=name, events=out,
                 meta=_meta("gcc", events=events,
                            footprint_bytes=footprint_bytes,
                            min_run=min_run, max_run=max_run,
                            store_fraction=store_fraction,
                            branch_entropy=branch_entropy, seed=seed))


def zipfian_trace(events: int = 1600,
                  footprint_bytes: int = 1024 * 1024,
                  hot_fraction: float = 0.05,
                  hot_weight: float = 0.9,
                  store_fraction: float = 0.2,
                  branch_every: int = 4,
                  branch_entropy: float = 0.15,
                  seed: int = 14,
                  name: str = "zipf") -> Trace:
    """Hot/cold skew: ``hot_weight`` of accesses hit a small hot set.

    The hot set is a random ``hot_fraction`` sample of the footprint's
    lines (cache-resident working set); the cold tail sprays uniformly
    over the rest — the classic zipfian two-point approximation.
    """
    rng = SplitMix64(derive_seed("trace", name, seed))
    n_lines = max(4, footprint_bytes // _LINE)
    n_hot = max(1, int(n_lines * hot_fraction))
    # 2x oversampling compensates for collisions; the hot set can still
    # come up slightly short of n_hot, which is harmless skew.
    hot = sorted({rng.next_u64() % n_lines for _ in range(n_hot * 2)})
    hot = hot[:n_hot]
    out = []
    access = 0
    while len(out) < events:
        if rng.random() < hot_weight and hot:
            line = hot[rng.next_u64() % len(hot)]
        else:
            line = rng.next_u64() % n_lines
        kind = STORE if rng.random() < store_fraction else LOAD
        out.append(TraceEvent(pc=0, kind=kind,
                              address=DEFAULT_BASE + line * _LINE))
        access += 1
        if len(out) < events and access % branch_every == 0:
            taken = rng.random() >= branch_entropy
            out.append(TraceEvent(pc=0, kind=BRANCH, taken=taken))
    return Trace(name=name, events=out,
                 meta=_meta("zipf", events=events,
                            footprint_bytes=footprint_bytes,
                            hot_fraction=hot_fraction,
                            hot_weight=hot_weight,
                            store_fraction=store_fraction,
                            branch_every=branch_every,
                            branch_entropy=branch_entropy, seed=seed))


#: Generator per family name (the ``repro trace`` CLI and the workload
#: suite resolve through this table).
TRACE_FAMILIES: Dict[str, Callable[..., Trace]] = {
    "mcf": pointer_chase_trace,
    "stream": streaming_trace,
    "gcc": mixed_trace,
    "zipf": zipfian_trace,
}


def synthetic_trace(family: str, **params) -> Trace:
    """Generate a trace by family name (see :data:`TRACE_FAMILIES`)."""
    try:
        generator = TRACE_FAMILIES[family]
    except KeyError:
        raise KeyError(f"unknown trace family {family!r}; "
                       f"known: {sorted(TRACE_FAMILIES)}") from None
    return generator(**params)

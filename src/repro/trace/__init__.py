"""Trace-driven workload engine.

Compiles recorded or synthetic memory-access traces into ISA programs
runnable in any victim or co-runner slot:

* :mod:`repro.trace.format` — the :class:`Trace`/:class:`TraceEvent`
  model and the versioned on-disk text format;
* :mod:`repro.trace.record` — capture a trace from any workload via the
  functional interpreter (with pointer-chase dependence detection);
* :mod:`repro.trace.replay` — :class:`TraceReplayWorkload`, lowering a
  trace back into a program with verbatim addresses (set-index
  geometry preserved), re-serialized dependent loads, and
  data-dependent branches that replay the recorded outcome pattern;
* :mod:`repro.trace.synthetic` — SPEC-like generators (mcf pointer
  chase, lbm streaming, gcc mixed, zipfian hot/cold).

:func:`trace_suite` names the default synthetic replay workloads
(``trace-mcf``/``trace-stream``/``trace-gcc``/``trace-zipf``) that the
harness registry exposes next to the Fig. 7 kernels; ``trace:<path>``
registry names replay saved trace files.
"""

from __future__ import annotations

from typing import Dict

from ..workloads.base import Workload
from .format import (BRANCH, LOAD, STORE, Trace, TraceEvent,
                     TraceFormatError, load_trace, make_trace)
from .record import record_trace
from .replay import (TraceReplayWorkload, lower_trace, pattern_region,
                     replay_workload_from_file)
from .synthetic import (TRACE_FAMILIES, mixed_trace, pointer_chase_trace,
                        streaming_trace, synthetic_trace, zipfian_trace)

__all__ = [
    "BRANCH", "LOAD", "STORE", "TRACE_FAMILIES", "Trace", "TraceEvent",
    "TraceFormatError", "TraceReplayWorkload", "load_trace", "lower_trace",
    "make_trace", "mixed_trace", "pattern_region", "pointer_chase_trace",
    "record_trace", "replay_workload_from_file", "resolve_trace_source",
    "streaming_trace", "synthetic_trace", "trace_suite",
    "trace_workload_name", "zipfian_trace",
]


def _classify_source(arg: str):
    """Shared CLI-argument precedence: ``trace:<path>`` → synthetic
    family (``mcf`` or ``trace-mcf``) → existing file path.

    Family names win over incidental files of the same name so
    resolution never depends on the working directory; prefix with
    ``trace:`` (or ``./``) to force a file.  Returns ``("file", path)``,
    ``("family", name)`` or ``None``.
    """
    import os

    if arg.startswith("trace:"):
        return "file", arg[len("trace:"):]
    family = arg[len("trace-"):] if arg.startswith("trace-") else arg
    if family in TRACE_FAMILIES:
        return "family", family
    if os.path.isfile(arg):
        return "file", arg
    return None


def resolve_trace_source(arg: str) -> Trace:
    """Resolve a CLI trace argument to a :class:`Trace`.

    Precedence (see :func:`_classify_source`): explicit ``trace:<path>``
    file, then synthetic family (``mcf``/``stream``/``gcc``/``zipf`` or
    their ``trace-*`` workload spellings), then an existing file path.
    """
    kind = _classify_source(arg)
    if kind is None:
        raise FileNotFoundError(
            f"no trace file or synthetic family named {arg!r} "
            f"(families: {sorted(TRACE_FAMILIES)})")
    if kind[0] == "file":
        return load_trace(kind[1])
    return synthetic_trace(kind[1])


def trace_workload_name(arg: str) -> str:
    """Normalize a CLI trace argument to a registry workload name.

    Same precedence as :func:`resolve_trace_source`; an unresolvable
    argument passes through unchanged so the registry can raise its
    usual known-names error.
    """
    kind = _classify_source(arg)
    if kind is None:
        return arg
    if kind[0] == "file":
        return f"trace:{kind[1]}"
    return f"trace-{kind[1]}"

#: memory_bound flags for the default suite (report metadata: expected
#: to benefit from runahead).  The chase + arc streams and the pure
#: streams are memory-bound; gcc's short reused runs and zipf's hot set
#: are mostly cache-resident.
_SUITE_MEMORY_BOUND = {
    "mcf": True,
    "stream": True,
    "gcc": False,
    "zipf": False,
}


#: Memoized default suite: generators are pure functions of committed
#: constants and `Workload`s are read-only after construction, so one
#: instance per process serves every trial — `get_workload` runs once
#: per trial, and regenerating four traces (plus their sha256 digests)
#: there would tax even non-trace sweeps.
_SUITE: Dict[str, Workload] = {}


def trace_suite() -> Dict[str, Workload]:
    """Default synthetic trace workloads, keyed ``trace-<family>``."""
    if not _SUITE:
        for family in TRACE_FAMILIES:
            workload = TraceReplayWorkload(
                synthetic_trace(family),
                memory_bound=_SUITE_MEMORY_BOUND.get(family, True),
                name=f"trace-{family}")
            _SUITE[workload.name] = workload
    return dict(_SUITE)

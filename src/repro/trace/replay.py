"""Lower a trace back into a runnable ISA program.

:class:`TraceReplayWorkload` is a :class:`~repro.workloads.base.Workload`
whose ``build`` compiles a :class:`~repro.trace.format.Trace` into a
:class:`~repro.isa.program.Program` through the
:class:`~repro.isa.builder.ProgramBuilder`.  The lowering contract:

* **Addresses are preserved verbatim** — every memory event becomes one
  ``load``/``store`` at the traced byte address (``r0``-relative with
  the address as immediate), so line and set-index geometry match the
  source execution on *every* cache level by identity.  Pinned by
  ``tests/trace/test_geometry.py``.
* **Dependent loads re-serialize.**  A load recorded with
  ``depends=True`` gets its base register derived (via an always-zero
  ``sltu``) from the most recent load's destination, so its address
  resolves only after that load returns — in runahead mode the address
  goes INV during a stall, exactly like mcf's next-pointer chase.
  Independent loads use ``r0`` directly and issue with full
  memory-level parallelism.
* **Branch outcomes replay data-dependently.**  The taken/not-taken
  bits are compiled into a side array (one word per branch event); each
  branch event loads its bit and conditionally skips a ``nop``, so the
  branch resolves from loaded data and the direction predictor observes
  the source execution's exact outcome sequence.  The side array is the
  one address-space artifact of the lowering (a sequential ~8 B/branch
  stream placed above the trace's own footprint); ``internal_ranges``
  exposes it so re-recordings can exclude it — which is how the
  round-trip test closes.
* ``rounds > 1`` wraps the body in a counted loop (one extra
  always/last-not-taken branch per round) and replays the same event
  stream again — steady-state cache behaviour instead of a cold sweep.

With ``rounds=1`` the body is straight-line code: the replayed
instruction stream contains *no* control-flow or memory events beyond
the trace's own (plus the pattern-array loads, which are excludable),
giving the exact round-trip ``record(replay(T)) == T``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..isa.builder import ProgramBuilder
from ..isa.memory_image import DEFAULT_BASE, MemoryImage
from ..workloads.base import Workload
from .format import BRANCH, LOAD, STORE, Trace, load_trace

#: Symbol name of the branch-pattern side array.
PATTERN_SYMBOL = "trace_pattern"

#: Replay register conventions (all scratch; the program owns the file).
_DEST_REGS = ("r16", "r17", "r18", "r19")   # rotating load destinations
_DEP_BASE = "r11"                           # zero derived from last load
_PATTERN_VALUE = "r13"                      # current branch-pattern word
_STORE_VALUE = "r14"                        # constant store payload
_PATTERN_PTR = "r15"                        # pattern-array walk pointer
_ROUND_COUNT = "r12"                        # outer-loop counter

#: Guard against traces that would lower into programs far beyond any
#: realistic instruction footprint (the frontend model fetches real
#: code bytes, so replay code must stay within sane bounds).
MAX_REPLAY_INSTRUCTIONS = 200_000

_LINE = 64


def pattern_region(trace: Trace) -> Optional[Tuple[int, int]]:
    """Address window of the branch-pattern array, or ``None``.

    A pure function of the trace: the array starts one cache line above
    the highest traced address (never below the default image base) and
    holds one word per branch event.  Both the lowering and
    ``internal_ranges`` derive the placement from here, so the region
    is known without building the program.
    """
    n_branches = sum(1 for e in trace.events if e.kind == BRANCH)
    if not n_branches:
        return None
    top = max(trace.max_address() + _LINE, DEFAULT_BASE)
    base = -(-top // _LINE) * _LINE
    return base, base + n_branches * 8


def lower_trace(trace: Trace, rounds: int = 1):
    """Compile a trace into ``(program, image, initial_sp=None)``."""
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    region = pattern_region(trace)
    image = MemoryImage(base=region[0] if region else DEFAULT_BASE)
    if region:
        n_branches = (region[1] - region[0]) // 8
        image.alloc_array(PATTERN_SYMBOL, n_branches)
        for i, taken in enumerate(trace.taken_stream()):
            if taken:
                image.write_word(region[0] + i * 8, 1)

    builder = ProgramBuilder(image)
    builder.comment(f"trace replay: {trace.name} "
                    f"({len(trace.events)} events, rounds={rounds})")
    builder.li(_STORE_VALUE, 7)
    if rounds > 1:
        builder.li(_ROUND_COUNT, rounds)
        builder.mark("round")
    if region:
        builder.li(_PATTERN_PTR, f"@{PATTERN_SYMBOL}")

    n_instructions = 0
    dest_cursor = 0
    last_dest = None
    for event in trace.events:
        if event.kind == LOAD:
            dest = _DEST_REGS[dest_cursor]
            dest_cursor = (dest_cursor + 1) % len(_DEST_REGS)
            if event.depends and last_dest is not None:
                builder.sltu(_DEP_BASE, last_dest, "r0")
                builder.load(dest, _DEP_BASE, event.address)
                n_instructions += 2
            else:
                builder.load(dest, "r0", event.address)
                n_instructions += 1
            last_dest = dest
        elif event.kind == STORE:
            builder.store(_STORE_VALUE, "r0", event.address)
            n_instructions += 1
        else:  # BRANCH
            label = builder.fresh_label("taken")
            builder.load(_PATTERN_VALUE, _PATTERN_PTR, 0)
            builder.addi(_PATTERN_PTR, _PATTERN_PTR, 8)
            builder.bne(_PATTERN_VALUE, "r0", label)
            builder.nop()
            builder.mark(label)
            n_instructions += 4
        if n_instructions > MAX_REPLAY_INSTRUCTIONS:
            raise ValueError(
                f"trace {trace.name!r} lowers to more than "
                f"{MAX_REPLAY_INSTRUCTIONS} instructions; record or "
                f"generate it with fewer events (max_events)")

    if rounds > 1:
        builder.addi(_ROUND_COUNT, _ROUND_COUNT, -1)
        builder.bne(_ROUND_COUNT, "r0", "round")
    builder.halt()
    return builder.build(), image, None


class TraceReplayWorkload(Workload):
    """A workload that replays a trace through the lowering above.

    Drop-in wherever a :class:`~repro.workloads.base.Workload` is
    accepted: the Fig. 7 IPC slot, the multi-core co-runner slot
    (``Topology(corunner=...)``), ``repro run ipc workload=...``.  The
    build is memoized under the trace's content digest, so sweeps with
    many trials assemble each replay program once.
    """

    def __init__(self, trace: Trace, rounds: int = 1,
                 name: Optional[str] = None,
                 description: Optional[str] = None,
                 memory_bound: bool = True):
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.trace = trace
        self.rounds = rounds
        Workload.__init__(
            self, name=name or f"trace-{trace.name}",
            description=description or
            f"trace replay of {trace.name!r} "
            f"({len(trace.events)} events x{rounds})",
            build=self._build_products, memory_bound=memory_bound,
            cache_key=f"trace/{trace.digest()}/{rounds}")

    def _build_products(self):
        return lower_trace(self.trace, rounds=self.rounds)

    @property
    def internal_ranges(self) -> Tuple[Tuple[int, int], ...]:
        """Address windows of replay bookkeeping (the pattern array).

        Pass to :func:`repro.trace.record.record_trace` as
        ``exclude_ranges`` when re-recording a replay program.
        """
        region = pattern_region(self.trace)
        return (region,) if region else ()


def replay_workload_from_file(path, rounds: int = 1) -> TraceReplayWorkload:
    """Build a replay workload from a saved trace file.

    Resolved by the harness registry for workload names of the form
    ``trace:<path>`` — which makes recorded traces usable anywhere a
    registry name is: ``--corunner trace:mcf.trace``, ``repro run ipc
    workload=trace:mcf.trace``, or a harness trial spec (the name is a
    plain string, so trials stay JSON-serializable; the cache key is
    the file's *content* digest, so editing the file invalidates cached
    results).
    """
    trace = load_trace(path)
    return TraceReplayWorkload(trace, rounds=rounds,
                               name=f"trace:{trace.name}")

"""Capture a trace from any runnable program via the interpreter.

:func:`record_trace` steps the functional reference interpreter
(:class:`repro.isa.interpreter.Interpreter`) one instruction at a time
and writes down, in execution order:

* every load/store **word** access with its effective address —
  including the implicit stack push of ``call`` and pop of ``ret``, and
  both lanes of vector accesses (the cache sees two word addresses);
* every **conditional** branch with its taken/not-taken outcome;
* per load, whether its *address* was computed from an earlier load's
  value (``TraceEvent.depends``) — detected by propagating a
  came-from-memory taint bit through the register dataflow, so a
  pointer chase like mcf's ``load r1, r1, 0`` records as a chain of
  dependent loads and replays as one (unprefetchable by runahead).
  Taint flows through registers only; a value laundered through memory
  (stored, then reloaded) records as a fresh independent load.

Unconditional control flow (``jmp``/``jr``/``call``/``ret`` targets) is
not recorded: the event *order* already reflects it, and replay emits
straight-line code.  ``clflush`` is skipped — it is an architectural
no-op that touches no data.

Because the interpreter is the golden model the pipeline must agree
with, a trace recorded here is exactly the access stream the simulated
core replays architecturally — the round-trip property
``record(replay(T)) == T`` (addresses and taken bits) is pinned by
``tests/trace/test_roundtrip.py``.

``exclude_ranges`` drops memory events landing in given address
windows; the replay engine uses it to hide its own bookkeeping (the
branch-pattern array) from re-recordings.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from ..isa.instructions import (INSTR_BYTES, WORD_BYTES, Opcode,
                                to_unsigned64)
from ..isa.interpreter import Interpreter, InterpreterError
from ..isa.registers import NUM_ARCH_REGS, REG_SP, REG_ZERO
from .format import BRANCH, LOAD, STORE, Trace, TraceEvent

_OP_CALL = int(Opcode.CALL)
_OP_RET = int(Opcode.RET)
_OP_RDTSC = int(Opcode.RDTSC)
_VEC_OPS = (int(Opcode.VLOAD), int(Opcode.VSTORE))

DEFAULT_MAX_STEPS = 2_000_000


def _in_ranges(address: int,
               ranges: Sequence[Tuple[int, int]]) -> bool:
    for start, end in ranges:
        if start <= address < end:
            return True
    return False


def record_trace(source, name: Optional[str] = None,
                 max_steps: int = DEFAULT_MAX_STEPS,
                 max_events: Optional[int] = None,
                 exclude_ranges: Iterable[Tuple[int, int]] = ()) -> Trace:
    """Interpret ``source`` and return its event trace.

    source:
        A :class:`~repro.workloads.base.Workload` (materialized and
        named automatically) or a ``(program, image, initial_sp)``
        triple as returned by ``Workload.materialize()``.
    max_steps:
        Interpreter step budget; exceeding it raises
        :class:`~repro.isa.interpreter.InterpreterError` (a trace of a
        program that never halted would be misleading).
    max_events:
        Optional cap on recorded events; recording stops early and the
        trace's ``meta["truncated"]`` notes it.  The program's replayed
        footprint is then a prefix of its real one.
    exclude_ranges:
        ``(start, end)`` byte windows whose memory events are dropped
        (half-open intervals).
    """
    if hasattr(source, "materialize"):
        program, image, initial_sp = source.materialize()
        if name is None:
            name = getattr(source, "name", None)
    else:
        program, image, initial_sp = source
    name = name or "recorded"
    ranges = [(int(start), int(end)) for start, end in exclude_ranges]

    interp = Interpreter(program, memory_image=image, initial_sp=initial_sp)
    events = []
    truncated = False
    #: Per-register "this value came from memory" bit, propagated
    #: through ALU dataflow to classify load addresses as dependent.
    tainted = [False] * NUM_ARCH_REGS

    def emit(event: TraceEvent) -> None:
        if event.is_memory and ranges and _in_ranges(event.address, ranges):
            return
        events.append(event)

    while not interp.halted:
        if max_events is not None and len(events) >= max_events:
            truncated = True
            break
        if interp.steps >= max_steps:
            raise InterpreterError(
                f"program did not halt within {max_steps} steps "
                f"while recording trace {name!r}")
        pc = interp.pc
        instr = program.fetch(pc)
        if instr is None:
            break
        # Effective addresses are computed from pre-step register state,
        # exactly as the interpreter's own handlers do.
        if instr.load:
            base = instr.srcs[0]
            addr = to_unsigned64(interp.read_reg(base) + instr.imm)
            depends = tainted[base]
            emit(TraceEvent(pc=pc, kind=LOAD, address=addr,
                            depends=depends))
            if instr.op in _VEC_OPS:
                emit(TraceEvent(pc=pc, kind=LOAD, address=addr + WORD_BYTES,
                                depends=depends))
        elif instr.store:
            addr = to_unsigned64(interp.read_reg(instr.srcs[1]) + instr.imm)
            emit(TraceEvent(pc=pc, kind=STORE, address=addr))
            if instr.op in _VEC_OPS:
                emit(TraceEvent(pc=pc, kind=STORE,
                                address=addr + WORD_BYTES))
        elif instr.op == _OP_CALL:
            sp = to_unsigned64(interp.read_reg(REG_SP) - WORD_BYTES)
            emit(TraceEvent(pc=pc, kind=STORE, address=sp))
        elif instr.op == _OP_RET:
            sp = to_unsigned64(interp.read_reg(REG_SP))
            emit(TraceEvent(pc=pc, kind=LOAD, address=sp))
        if not interp.step():
            break
        if instr.cond_branch:
            emit(TraceEvent(pc=pc, kind=BRANCH,
                            taken=interp.pc != pc + INSTR_BYTES))
        dest = instr.dest
        if dest is not None and dest != REG_ZERO:
            if instr.load:
                tainted[dest] = True
            elif instr.op == _OP_RDTSC or not instr.srcs:
                tainted[dest] = False          # li / rdtsc: fresh value
            else:
                tainted[dest] = any(tainted[src] for src in instr.srcs)

    meta = {"source": name, "steps": interp.steps}
    if truncated:
        meta["truncated"] = True
    return Trace(name=name, events=events, meta=meta)

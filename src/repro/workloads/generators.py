"""SPEC2006-shaped synthetic kernels (the Fig. 7 benchmark set).

Each generator emits an assembly kernel whose dominant memory behaviour
matches what the runahead literature reports for the benchmark it is
named after:

===========  ==========================================================
zeusmp-like  small warm working set, long FP dependence chains —
             compute bound, little for runahead to do
wrf-like     mixed int/FP on an L2-resident footprint — mildly
             memory sensitive
bwaves-like  blocked strided FP sweeps — regular independent misses
lbm-like     two-stream streaming update — one cold line per 8 elements
             on both streams
mcf-like     pointer chasing with per-node independent arc-array reads —
             the chase itself is unprefetchable (dependent addresses go
             INV in runahead); the arc reads supply the MLP
gems-like    three-array stencil — dense independent miss streams
===========  ==========================================================

Arrays are *cold* at kernel start (the simulator's caches start empty),
so streaming kernels take a memory-level miss on every new line exactly
like a first sweep over a >LLC dataset; compute kernels pre-warm their
working set through an explicit warm-up loop inside the kernel.
"""

from __future__ import annotations

from ..isa.assembler import assemble
from ..isa.memory_image import MemoryImage
from .base import Workload

# Deterministic PRNG for data layout (no global randomness).
_MASK = (1 << 63) - 1


def _lcg(seed):
    state = seed & _MASK
    while True:
        state = (state * 6364136223846793005 + 1442695040888963407) & _MASK
        yield state


def build_zeusmp_like(elements=96, rounds=4):
    """Compute-bound FP kernel over a warm working set."""
    def build():
        image = MemoryImage()
        data = image.alloc_array("data", elements, fill=3)
        source = f"""
            li r1, @data
            li r2, {elements}
        warm:
            load r3, r1, 0
            addi r1, r1, 8
            addi r2, r2, -1
            bne r2, r0, warm

            li r4, {rounds}
            li r9, 2
            fcvt f5, r9
        outer:
            li r1, @data
            li r2, {elements}
        inner:
            fload f1, r1, 0
            fmul f2, f1, f5
            fadd f3, f2, f1
            fdiv f4, f3, f5
            fmul f6, f4, f4
            fadd f7, f6, f3
            fstore f7, r1, 0
            addi r1, r1, 8
            addi r2, r2, -1
            bne r2, r0, inner
            addi r4, r4, -1
            bne r4, r0, outer
            halt
        """
        return assemble(source, memory_image=image), image, None
    return Workload("zeusmp", "warm-set FP compute (zeusmp-shaped)",
                    build, memory_bound=False,
                    cache_key=f"zeusmp/{elements}/{rounds}")


def build_wrf_like(elements=48, stride_words=3, rounds=18):
    """Mixed int/FP, mostly warm working set with a cold first sweep."""
    def build():
        image = MemoryImage()
        image.alloc_array("grid", elements * stride_words, fill=5)
        source = f"""
            li r5, {rounds}
            li r9, 3
            fcvt f9, r9
            fmov f8, f9
        round:
            li r1, @grid
            li r2, {elements}
        loop:
            load r3, r1, 0
            fload f1, r1, 8
            addi r4, r3, 17
            fmul f2, f1, f9
            fdiv f3, f2, f9
            fadd f8, f8, f3
            store r4, r1, 16
            fstore f3, r1, 8
            addi r1, r1, {stride_words * 8}
            addi r2, r2, -1
            bne r2, r0, loop
            addi r5, r5, -1
            bne r5, r0, round
            halt
        """
        return assemble(source, memory_image=image), image, None
    return Workload("wrf", "mixed int/FP, modest miss rate (wrf-shaped)",
                    build, memory_bound=False,
                    cache_key=f"wrf/{elements}/{stride_words}/{rounds}")


def build_bwaves_like(blocks=12, block_elements=24, block_stride_lines=4,
                      serial_chain=16):
    """Blocked strided FP sweeps: regular independent misses.

    ``serial_chain`` inserts a loop-carried FP dependence per element,
    calibrating the compute:miss ratio to the benchmark's character
    (see EXPERIMENTS.md, Fig. 7 calibration).
    """
    chain = "\n".join("            fmul f4, f4, f9"
                      for _ in range(serial_chain))
    def build():
        image = MemoryImage()
        span = blocks * block_stride_lines * 64 + block_elements * 8
        image.alloc("field", span)
        source = f"""
            li r1, @field
            li r2, {blocks}
            li r9, 2
            fcvt f9, r9
            fmov f8, f9
        block:
            mov r3, r1
            li r4, {block_elements}
        elem:
            fload f1, r3, 0
            fmul f2, f1, f9
            fadd f3, f2, f9
            fmov f4, f3
{chain}
            fadd f8, f8, f4
            fstore f3, r3, 0
            addi r3, r3, 8
            addi r4, r4, -1
            bne r4, r0, elem
            addi r1, r1, {block_stride_lines * 64}
            addi r2, r2, -1
            bne r2, r0, block
            halt
        """
        return assemble(source, memory_image=image), image, None
    return Workload("bwaves", "blocked strided FP sweep (bwaves-shaped)",
                    build, memory_bound=True,
                    cache_key=f"bwaves/{blocks}/{block_elements}/"
                              f"{block_stride_lines}/{serial_chain}")


def build_lbm_like(elements=360, serial_chain=8):
    """Two-stream streaming update: one cold line per 8 elements/stream.

    Real lbm performs ~20 FLOP per site; ``serial_chain`` models that
    collision compute as a loop-carried FP chain, which calibrates the
    runahead gain to the paper's range.
    """
    chain = "\n".join("            fmul f4, f4, f9"
                      for _ in range(serial_chain))
    def build():
        image = MemoryImage()
        image.alloc_array("src", elements + 8, fill=7)
        image.alloc_array("dst", elements + 8)
        source = f"""
            li r1, @src
            li r2, @dst
            li r3, {elements}
            li r9, 3
            fcvt f9, r9
            fmov f10, f9
        loop:
            fload f1, r1, 0
            fload f2, r1, 64
            fadd f3, f1, f2
            fmov f4, f3
{chain}
            fadd f10, f10, f4
            fstore f4, r2, 0
            addi r1, r1, 8
            addi r2, r2, 8
            addi r3, r3, -1
            bne r3, r0, loop
            halt
        """
        return assemble(source, memory_image=image), image, None
    return Workload("lbm", "streaming two-stream update (lbm-shaped)",
                    build, memory_bound=True,
                    cache_key=f"lbm/{elements}/{serial_chain}")


def build_mcf_like(nodes=160, node_words=4, seed=1234, serial_work=12):
    """Pointer chase + independent arc-array reads per node.

    The next-pointer chain is a random permutation (dependent loads:
    runahead can NOT prefetch those — their addresses go INV); each
    visit also reads four strided arc arrays, which supply the
    memory-level parallelism runahead exposes.  ``serial_work`` models
    the per-node simplex bookkeeping as a serial integer chain; without
    it the ROB alone covers enough arc misses that runahead's entry/exit
    overhead makes it a net loss (measured — see EXPERIMENTS.md).
    """
    work = "\n".join("            addi r5, r5, 1"
                     for _ in range(serial_work))

    def build():
        image = MemoryImage()
        node_base = image.alloc_array("nodes", nodes * node_words)
        for stream in ("arcs_a", "arcs_b", "arcs_c", "arcs_d"):
            image.alloc_array(stream, nodes * 8)
        # Random-permutation next pointers (single cycle through all).
        rng = _lcg(seed)
        order = list(range(1, nodes))
        for i in range(len(order) - 1, 0, -1):
            j = next(rng) % (i + 1)
            order[i], order[j] = order[j], order[i]
        chain = [0] + order
        for pos, node in enumerate(chain):
            successor = chain[(pos + 1) % nodes]
            addr = node_base + node * node_words * 8
            image.write_word(addr, node_base + successor * node_words * 8)
            image.write_word(addr + 8, node * 3 + 1)     # cost
        source = f"""
            li r1, @nodes          # current node pointer
            li r2, @arcs_a
            li r3, @arcs_b
            li r12, @arcs_c
            li r13, @arcs_d
            li r4, {nodes}
            li r5, 0               # accumulator
        visit:
            load r6, r1, 8         # node cost
            load r7, r2, 0         # independent arc reads (strided)
            load r8, r3, 0
            load r10, r12, 0
            load r11, r13, 0
            add r5, r5, r6
            add r5, r5, r7
            add r5, r5, r8
            add r5, r5, r10
            add r5, r5, r11
{work}
            load r1, r1, 0         # chase the next pointer (dependent)
            addi r2, r2, 64
            addi r3, r3, 64
            addi r12, r12, 64
            addi r13, r13, 64
            addi r4, r4, -1
            bne r4, r0, visit
            halt
        """
        return assemble(source, memory_image=image), image, None
    return Workload("mcf", "pointer chase + arc arrays (mcf-shaped)",
                    build, memory_bound=True,
                    cache_key=f"mcf/{nodes}/{node_words}/{seed}/"
                              f"{serial_work}")


def build_gems_like(elements=280, serial_chain=14):
    """Three-array FDTD-style stencil: dense independent miss streams.

    ``serial_chain`` adds the loop-carried field-update dependence that
    the real FDTD time-stepping has, calibrating the gain.
    """
    chain = "\n".join("            fmul f6, f6, f9"
                      for _ in range(serial_chain))

    def build():
        image = MemoryImage()
        image.alloc_array("h_field", elements + 8, fill=2)
        image.alloc_array("e_field", elements + 8, fill=1)
        image.alloc_array("current", elements + 8, fill=1)
        source = f"""
            li r1, @h_field
            li r2, @e_field
            li r3, @current
            li r4, {elements}
            li r9, 2
            fcvt f9, r9
            fmov f10, f9
        loop:
            fload f1, r1, 8
            fload f2, r1, 0
            fsub f3, f1, f2
            fload f4, r3, 0
            fmul f5, f3, f9
            fsub f6, f5, f4
{chain}
            fload f7, r2, 0
            fadd f8, f7, f6
            fadd f10, f10, f8
            fstore f8, r2, 0
            addi r1, r1, 8
            addi r2, r2, 8
            addi r3, r3, 8
            addi r4, r4, -1
            bne r4, r0, loop
            halt
        """
        return assemble(source, memory_image=image), image, None
    return Workload("gems", "three-array stencil (GemsFDTD-shaped)",
                    build, memory_bound=True,
                    cache_key=f"gems/{elements}/{serial_chain}")

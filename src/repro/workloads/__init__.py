"""SPEC2006-shaped synthetic workloads for the Fig. 7 evaluation."""

from .base import Workload, ipc_comparison
from .generators import (build_bwaves_like, build_gems_like, build_lbm_like,
                         build_mcf_like, build_wrf_like, build_zeusmp_like)
from .suite import (FIG7_ORDER, geometric_mean_speedup, run_fig7,
                    spec_like_suite)

__all__ = [
    "Workload", "ipc_comparison", "build_bwaves_like", "build_gems_like",
    "build_lbm_like", "build_mcf_like", "build_wrf_like",
    "build_zeusmp_like", "FIG7_ORDER", "geometric_mean_speedup", "run_fig7",
    "spec_like_suite",
]

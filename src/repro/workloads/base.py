"""Workload plumbing: the Workload bundle and the run helper.

Fig. 7 of the paper evaluates runahead on six SPEC CPU2006 benchmarks.
SPEC sources and inputs are not redistributable (and would be absurd to
run on a Python timing model), so :mod:`repro.workloads.generators`
builds synthetic kernels with the memory behaviour each benchmark is
known for in the runahead literature — pointer chasing for mcf,
streaming for lbm, multi-array stencils for GemsFDTD, and so on.  What
Fig. 7 needs is the *shape* of the IPC comparison (memory-bound kernels
gain, compute-bound ones do not, ~11 % mean), which these kernels
parameterize directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..isa.memory_image import MemoryImage
from ..isa.program import Program
from ..pipeline.config import CoreConfig
from ..pipeline.core import Core
from ..runahead.base import RunaheadController

#: Memoized build products, keyed by the workload's ``cache_key``.
#: Workload builders are deterministic functions of their parameters, so
#: two trials with the same key get the same program — a ``Program`` is
#: immutable once assembled and a ``MemoryImage`` is only *read*
#: (``initial_words()`` copies) by the simulator, which makes sharing
#: safe.  This keeps sweeps from re-assembling identical kernels for
#: every single trial.
_BUILD_CACHE: Dict[str, Tuple[Program, MemoryImage, Optional[int]]] = {}


def clear_build_cache():
    """Drop all memoized workload builds (tests and long-lived servers)."""
    _BUILD_CACHE.clear()


@dataclass
class Workload:
    """One runnable benchmark kernel.

    ``cache_key`` opts the workload into the assembled-program cache; it
    must encode *every* generator parameter that affects the build.
    Leave it None for builders that are not referentially transparent.
    """

    name: str
    description: str
    build: Callable[[], tuple]     # () -> (Program, MemoryImage, sp|None)
    memory_bound: bool             # expected to benefit from runahead
    cache_key: Optional[str] = None

    def materialize(self):
        """Return (program, image, sp), memoized when ``cache_key`` is set."""
        if self.cache_key is None:
            return self.build()
        built = _BUILD_CACHE.get(self.cache_key)
        if built is None:
            built = self.build()
            _BUILD_CACHE[self.cache_key] = built
        return built

    def run(self, runahead: Optional[RunaheadController] = None,
            config: Optional[CoreConfig] = None, max_cycles=5_000_000,
            trace=None):
        """Execute on a fresh core; returns the core (stats inside).

        ``trace`` attaches a :class:`repro.obs.sink.TraceSink` to the
        core and its hierarchy for the duration of the run — pure
        observation, never part of the result path.
        """
        program, image, sp = self.materialize()
        core = Core(program, memory_image=image,
                    config=config or CoreConfig.paper(), runahead=runahead,
                    initial_sp=sp, warm_icache=True)
        if trace is not None:
            core.trace = trace
            core.hierarchy.trace = trace
        core.run(max_cycles=max_cycles)
        if not core.halted:
            raise RuntimeError(f"workload {self.name} did not halt")
        return core


def ipc_comparison(workload: Workload, baseline: RunaheadController,
                   contender: RunaheadController,
                   config: Optional[CoreConfig] = None):
    """Return (baseline stats, contender stats, normalized IPC)."""
    base = workload.run(runahead=baseline, config=config)
    cont = workload.run(runahead=contender, config=config)
    speedup = cont.stats.ipc / base.stats.ipc if base.stats.ipc else 0.0
    return base.stats, cont.stats, speedup

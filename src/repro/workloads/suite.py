"""The Fig. 7 benchmark suite."""

from __future__ import annotations

from typing import Dict, Optional

from ..pipeline.config import CoreConfig
from ..runahead.base import NoRunahead
from ..runahead.original import OriginalRunahead
from .base import Workload, ipc_comparison
from .generators import (build_bwaves_like, build_gems_like, build_lbm_like,
                         build_mcf_like, build_wrf_like, build_zeusmp_like)

#: Paper order (Fig. 7 x-axis): zeusm, wrf, bwave, lbm, mcf, Gems.
FIG7_ORDER = ("zeusmp", "wrf", "bwaves", "lbm", "mcf", "gems")


def spec_like_suite() -> Dict[str, Workload]:
    """All six Fig. 7 kernels, keyed by name, in paper order."""
    workloads = [
        build_zeusmp_like(),
        build_wrf_like(),
        build_bwaves_like(),
        build_lbm_like(),
        build_mcf_like(),
        build_gems_like(),
    ]
    return {w.name: w for w in workloads}


def run_fig7(config: Optional[CoreConfig] = None, contender=None):
    """Run the Fig. 7 comparison; returns a list of result dicts.

    ``contender`` defaults to original runahead; pass any controller
    (precise, vector, secure, ...) for ablations.
    """
    suite = spec_like_suite()
    results = []
    for name in FIG7_ORDER:
        workload = suite[name]
        controller = contender() if contender is not None \
            else OriginalRunahead()
        base, cont, speedup = ipc_comparison(
            workload, NoRunahead(), controller, config=config)
        results.append({
            "name": name,
            "memory_bound": workload.memory_bound,
            "ipc_base": base.ipc,
            "ipc_runahead": cont.ipc,
            "speedup": speedup,
            "episodes": cont.runahead_episodes,
            "prefetches": cont.runahead_prefetches,
        })
    return results


def geometric_mean_speedup(results):
    product = 1.0
    for row in results:
        product *= row["speedup"]
    return product ** (1.0 / len(results)) if results else 0.0

"""repro — reproduction of SPECRUN (DAC 2024).

A cycle-level out-of-order processor simulator with runahead execution,
the SPECRUN transient-execution attack on it, and the secure-runahead
defense, all in pure Python.

Quickstart::

    from repro import assemble, Core, CoreConfig, MemoryImage
    from repro.runahead import OriginalRunahead

    image = MemoryImage()
    image.alloc_array("data", 64)
    source = "li r1, @data\\nload r2, r1, 0\\nhalt\\n"
    program = assemble(source, memory_image=image)
    core = Core(program, memory_image=image, config=CoreConfig.paper(),
                runahead=OriginalRunahead())
    stats = core.run()
    print(stats.summary())

See :mod:`repro.attack` for the SPECRUN proof of concept and
:mod:`repro.defense` for the §6 secure-runahead scheme.
"""

from .isa import (AssemblyError, Instruction, Interpreter, MemoryImage,
                  Opcode, Program, ProgramBuilder, assemble, run_program)
from .memory import (CacheConfig, HierarchyConfig, MemoryHierarchy,
                     SetAssociativeCache)
from .branch import (BranchTargetBuffer, BranchUnit, ReturnStackBuffer,
                     make_direction_predictor)
from .pipeline import Core, CoreConfig, CoreStats, RunaheadConfig, run_on_core
from .runahead import NoRunahead, OriginalRunahead, RunaheadController

__version__ = "1.0.0"

__all__ = [
    "AssemblyError", "Instruction", "Interpreter", "MemoryImage", "Opcode",
    "Program", "ProgramBuilder", "assemble", "run_program", "CacheConfig",
    "HierarchyConfig", "MemoryHierarchy", "SetAssociativeCache",
    "BranchTargetBuffer", "BranchUnit", "ReturnStackBuffer",
    "make_direction_predictor", "Core", "CoreConfig", "CoreStats",
    "RunaheadConfig", "run_on_core", "NoRunahead", "OriginalRunahead",
    "RunaheadController", "__version__",
]

"""The SPECRUN attack: gadgets, orchestration, baselines, window probes."""

from .gadgets import (AttackProgram, build_attack, build_btb_attack,
                      build_pht_attack, build_rsb_flush_attack,
                      build_rsb_overwrite_attack, DEFAULT_SECRET,
                      PROBE_ENTRIES)
from .specrun import AttackResult, SpecRunAttack, run_specrun
from .spectre import rob_limit_comparison, run_classic_spectre
from .window import (WindowMeasurement, measure_fig10, measure_window)

__all__ = [
    "AttackProgram", "build_attack", "build_btb_attack", "build_pht_attack",
    "build_rsb_flush_attack", "build_rsb_overwrite_attack", "DEFAULT_SECRET",
    "PROBE_ENTRIES", "AttackResult", "SpecRunAttack", "run_specrun",
    "rob_limit_comparison", "run_classic_spectre", "WindowMeasurement",
    "measure_fig10", "measure_window",
]

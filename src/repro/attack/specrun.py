"""SPECRUN attack orchestration.

Runs an :class:`~repro.attack.gadgets.AttackProgram` on a configured
core, reads the probe latencies out of simulated memory, and interprets
them exactly like the paper's Fig. 9: a single unambiguous latency dip
identifies the leaked secret.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.leak import LeakReport, analyze_probe
from ..pipeline.config import CoreConfig
from ..pipeline.core import Core
from ..runahead.base import NoRunahead, RunaheadController
from ..runahead.original import OriginalRunahead
from .gadgets import AttackProgram, build_attack


@dataclass
class AttackResult:
    """Outcome of one end-to-end attack run."""

    attack: AttackProgram
    report: LeakReport
    stats: object                 # CoreStats of the run
    runahead_name: str

    @property
    def latencies(self) -> List[int]:
        return self.report.latencies

    @property
    def leaked(self) -> bool:
        return self.report.leaked

    @property
    def recovered_secret(self) -> Optional[int]:
        return self.report.recovered

    @property
    def succeeded(self) -> bool:
        """Leak detected and it names the planted secret."""
        return self.report.recovered == self.attack.secret_value

    def describe(self) -> str:
        header = (f"SPECRUN[{self.attack.variant}] on "
                  f"{self.runahead_name}: ")
        if self.succeeded:
            return header + (f"recovered secret {self.recovered_secret} "
                             f"(planted {self.attack.secret_value})")
        if self.leaked:
            return header + (f"leak at {self.recovered_secret}, expected "
                             f"{self.attack.secret_value}")
        return header + "no leak"


class SpecRunAttack:
    """End-to-end attack driver.

    Parameters
    ----------
    variant:
        "pht" (Fig. 8/9), "btb" (Fig. 4a), "rsb-overwrite" (Fig. 4b) or
        "rsb-flush" (Fig. 4c).
    runahead:
        Controller under attack; defaults to original runahead.  Pass
        :class:`~repro.runahead.base.NoRunahead` for the baseline machine.
    config:
        Core configuration; defaults to the paper's Table-1 machine.
    gadget_kwargs:
        Forwarded to the gadget builder (``secret_value``,
        ``nop_padding``, ...).
    """

    def __init__(self, variant="pht", runahead: Optional[
            RunaheadController] = None, config: Optional[CoreConfig] = None,
            **gadget_kwargs):
        self.variant = variant
        self.config = config or CoreConfig.paper()
        self.runahead = runahead if runahead is not None \
            else OriginalRunahead()
        self.attack = build_attack(variant, **gadget_kwargs)

    def run(self, max_cycles=3_000_000) -> AttackResult:
        core = Core(self.attack.program, memory_image=self.attack.image,
                    config=self.config, runahead=self.runahead,
                    initial_sp=self.attack.initial_sp, warm_icache=True)
        core.run(max_cycles=max_cycles)
        if not core.halted:
            raise RuntimeError(
                f"attack program did not finish in {max_cycles} cycles")
        latencies = self.attack.read_latencies(core)
        report = analyze_probe(latencies)
        return AttackResult(attack=self.attack, report=report,
                            stats=core.stats,
                            runahead_name=self.runahead.name)


def run_specrun(variant="pht", runahead=None, config=None,
                **gadget_kwargs) -> AttackResult:
    """One-shot convenience wrapper around :class:`SpecRunAttack`."""
    return SpecRunAttack(variant=variant, runahead=runahead, config=config,
                         **gadget_kwargs).run()

"""SPECRUN attack orchestration.

Runs an :class:`~repro.attack.gadgets.AttackProgram` on a configured
core and interprets the probe timings.  Two measurement paths exist:

* the paper's own **in-program probe** (Fig. 9): the program times its
  probe loop with ``rdtsc`` and a single unambiguous latency dip
  identifies the leaked secret — a perfect, noise-free oracle;
* an external **channel receiver** (:mod:`repro.channel`): the probe
  loop is dropped from the program and a flush+reload / evict+reload /
  prime+probe receiver measures the simulated hierarchy instead, with
  injectable noise and multi-trial statistical decoding.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional

from ..analysis.leak import LeakReport, analyze_probe
from ..pipeline.config import CoreConfig
from ..pipeline.core import Core
from ..runahead.base import NoRunahead, RunaheadController
from ..runahead.original import OriginalRunahead
from .gadgets import AttackProgram, build_attack


@dataclass
class AttackResult:
    """Outcome of one end-to-end attack run."""

    attack: AttackProgram
    report: LeakReport
    stats: object                 # CoreStats of the run
    runahead_name: str
    #: Channel-path details (:class:`~repro.channel.session.
    #: ChannelOutcome`); None on the legacy in-program probe path.
    channel: Optional[object] = None

    @property
    def latencies(self) -> List[int]:
        return self.report.latencies

    @property
    def leaked(self) -> bool:
        return self.report.leaked

    @property
    def recovered_secret(self) -> Optional[int]:
        return self.report.recovered

    @property
    def succeeded(self) -> bool:
        """Leak detected and it names the planted secret."""
        return self.report.recovered == self.attack.secret_value

    def describe(self) -> str:
        header = (f"SPECRUN[{self.attack.variant}] on "
                  f"{self.runahead_name}: ")
        if self.channel is not None:
            header += (f"via {self.channel.receiver} "
                       f"x{self.channel.trials}: ")
        if self.succeeded:
            return header + (f"recovered secret {self.recovered_secret} "
                             f"(planted {self.attack.secret_value})")
        if self.leaked:
            return header + (f"leak at {self.recovered_secret}, expected "
                             f"{self.attack.secret_value}")
        return header + "no leak"


class SpecRunAttack:
    """End-to-end attack driver.

    Parameters
    ----------
    variant:
        "pht" (Fig. 8/9), "btb" (Fig. 4a), "rsb-overwrite" (Fig. 4b) or
        "rsb-flush" (Fig. 4c).
    runahead:
        Controller under attack; defaults to original runahead.  Pass
        :class:`~repro.runahead.base.NoRunahead` for the baseline machine.
    config:
        Core configuration; defaults to the paper's Table-1 machine.
    receiver:
        Optional :mod:`repro.channel` receiver name ("flush-reload",
        "evict-reload", "prime-probe").  Switches the gadget to the
        external-probe build and decodes through the channel subsystem.
    noise:
        Noise spec (dict or :class:`~repro.channel.noise.NoiseModel`)
        applied per measurement trial; receiver path only.
    trials:
        Measurement trials decoded together (receiver path only).
    seed:
        Base seed for the per-trial noise streams.
    cores / corunner / smt / corunner_runahead:
        Multi-core placement (see :class:`~repro.multicore.scenario.
        Topology`): ``cores >= 2`` measures cross-core through the
        shared L3, ``corunner`` runs a real interfering workload
        stream.  Receiver path only; the defaults are single-core.
    gadget_kwargs:
        Forwarded to the gadget builder (``secret_value``,
        ``nop_padding``, ...).
    """

    def __init__(self, variant="pht", runahead: Optional[
            RunaheadController] = None, config: Optional[CoreConfig] = None,
            receiver: Optional[str] = None, noise=None, trials: int = 1,
            seed: int = 0, cores: int = 1, corunner: Optional[str] = None,
            smt: bool = False, corunner_runahead: str = "none",
            **gadget_kwargs):
        from ..multicore.scenario import Topology

        self.variant = variant
        self.config = config or CoreConfig.paper()
        self.runahead = runahead if runahead is not None \
            else OriginalRunahead()
        self.receiver = receiver
        self.noise = noise
        self.trials = trials
        self.seed = seed
        self.topology = Topology.from_params(
            {"cores": cores, "corunner": corunner, "smt": smt,
             "corunner_runahead": corunner_runahead})
        if self.topology is not None and receiver is None:
            raise ValueError("multi-core topologies measure through a "
                             "channel receiver; pass receiver=...")
        self._calibration_attack = None
        self._calibration_runahead = None
        if receiver is not None:
            from ..channel.receiver import receiver_class
            cls = receiver_class(receiver)
            gadget_kwargs.setdefault("external_probe", True)
            gadget_kwargs.setdefault("flush_probe_array", cls.uses_clflush)
            if cls.needs_calibration:
                # The benign twin: same layout, in-bounds trigger.  Its
                # controller must be fresh (controllers carry per-run
                # state), so snapshot the still-unattached one now; each
                # run() clones the snapshot so repeated runs calibrate
                # with pristine state.
                calib_kwargs = dict(gadget_kwargs, trigger_index=1)
                self._calibration_attack = build_attack(variant,
                                                        **calib_kwargs)
                self._calibration_runahead = copy.deepcopy(self.runahead)
        elif trials != 1:
            raise ValueError("trials > 1 requires a channel receiver")
        self.attack = build_attack(variant, **gadget_kwargs)

    def run(self, max_cycles=3_000_000) -> AttackResult:
        if self.receiver is not None:
            return self._run_channel(max_cycles)
        core = Core(self.attack.program, memory_image=self.attack.image,
                    config=self.config, runahead=self.runahead,
                    initial_sp=self.attack.initial_sp, warm_icache=True)
        core.run(max_cycles=max_cycles)
        if not core.halted:
            raise RuntimeError(
                f"attack program did not finish in {max_cycles} cycles")
        latencies = self.attack.read_latencies(core)
        report = analyze_probe(latencies)
        return AttackResult(attack=self.attack, report=report,
                            stats=core.stats,
                            runahead_name=self.runahead.name)

    def _run_channel(self, max_cycles) -> AttackResult:
        from ..channel.session import run_channel_attack
        calibration_runahead = copy.deepcopy(self._calibration_runahead) \
            if self._calibration_runahead is not None else None
        outcome = run_channel_attack(
            self.attack, self.runahead, self.config, self.receiver,
            noise=self.noise, trials=self.trials, seed=self.seed,
            max_cycles=max_cycles,
            calibration_attack=self._calibration_attack,
            calibration_runahead=calibration_runahead,
            topology=self.topology)
        return AttackResult(attack=self.attack, report=outcome.report,
                            stats=outcome.stats,
                            runahead_name=self.runahead.name,
                            channel=outcome)


def run_specrun(variant="pht", runahead=None, config=None,
                **kwargs) -> AttackResult:
    """One-shot convenience wrapper around :class:`SpecRunAttack`."""
    return SpecRunAttack(variant=variant, runahead=runahead, config=config,
                         **kwargs).run()

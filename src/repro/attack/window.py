"""Transient-window measurement (Fig. 10, §5.3).

Three scenarios measure how many instructions can execute transiently
behind a flushed load:

* ① normal machine, flush once — bounded by the ROB (paper: N1 = 255);
* ② runahead machine, flush once — pseudo-retirement logically extends
  the ROB (paper: N2 = 480);
* ③ runahead machine, the stalling line flushed again *while the
  processor is in runahead mode* — the in-flight fill is dropped and
  must be re-fetched, prolonging the runahead interval (paper: N3 = 840).

Scenario ③ is driven by a co-resident attacker thread in the paper
("the attacker must wait until all instructions in the ROB have retired
before immediately flushing x and repeating this process ... a
probabilistic event").  The harness models that second thread as an
*asynchronous flusher*: while the core is in runahead mode it flushes the
stalling line (and restarts its fetch) a bounded number of times.  An
**unbounded** self-flushing program genuinely livelocks a runahead
machine — `clflush` younger than the stalling load re-executes after
every exit and re-drops the fill; see
``tests/attack/test_window.py::test_self_flush_livelocks`` — which is why
the paper calls case ③ probabilistic.

The measured quantity is the deepest younger instruction (in program
order, counted from the stalling load) that entered the window before the
load's data architecturally returned — the core tracks it as
``transient_window_max``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.assembler import assemble
from ..isa.memory_image import MemoryImage
from ..pipeline.config import CoreConfig
from ..pipeline.core import MODE_RUNAHEAD, Core
from ..runahead.base import NoRunahead
from ..runahead.original import OriginalRunahead


@dataclass
class WindowMeasurement:
    scenario: str
    window: int            # deepest transient instruction reached
    pseudo_retired: int
    runahead_episodes: int
    cycles: int


def window_program(sled=4096, self_flushes=0):
    """``clflush x; load x; nop sled`` (the Fig. 10 code snippets).

    ``self_flushes`` inserts in-stream clflushes after the load — used
    only by the livelock demonstration, never by the measurements.
    """
    image = MemoryImage()
    image.alloc_array("x_word", 2)
    mid = "\n".join("    clflush r1, 0" for _ in range(self_flushes))
    source = f"""
        li r1, @x_word
        clflush r1, 0
        fence
        load r2, r1, 0       # the stalling load
    {mid}
        .repeat {sled}, nop
        halt
    """
    return assemble(source, memory_image=image), image


class AsyncFlusher:
    """Models the co-resident attacker thread of scenario ③.

    While the core is in runahead mode, it flushes the stalling line and
    re-requests it (what the victim's outstanding miss logic would do),
    extending the runahead interval; at most ``budget`` times.  Timing is
    everything: a flush issued right after the miss barely extends the
    window (the re-fetch starts while the memory channel is still nearly
    free), so — like the paper's attacker, who waits for retirement
    before re-flushing — the flusher fires just before the in-flight
    fill would return.
    """

    def __init__(self, core, line_addr, budget, margin=8):
        self.core = core
        self.line = line_addr
        self.budget = budget
        self.margin = margin
        self.flushes = 0

    def poll(self):
        core = self.core
        if self.budget <= 0 or core.mode != MODE_RUNAHEAD:
            return
        checkpoint = core.checkpoint
        if checkpoint is None or \
                checkpoint.stalling_completion - core.cycle > self.margin:
            return
        core.hierarchy.flush_line(self.line)
        refetch = core.hierarchy.access_data(self.line, core.cycle,
                                             prefetch=True)
        core.extend_stall(refetch.completion)
        self.budget -= 1
        self.flushes += 1


def measure_window(runahead=None, async_flushes=0, sled=4096, config=None) \
        -> WindowMeasurement:
    """Run one Fig. 10 scenario and return the measured window."""
    program, image = window_program(sled=sled)
    controller = runahead if runahead is not None else NoRunahead()
    core = Core(program, memory_image=image,
                config=config or CoreConfig.paper(), runahead=controller,
                warm_icache=True)
    flusher = AsyncFlusher(core, image.address_of("x_word"),
                           budget=async_flushes)
    max_cycles = 2_000_000
    while not core.halted and core.cycle < max_cycles:
        core.step()
        flusher.poll()
        if not core._activity and not core.halted:
            skip_to = core._next_event()
            if skip_to is None:
                break
            if skip_to > core.cycle:
                core.cycle = skip_to
                flusher.poll()   # cycle skips may land inside its window
    if not core.halted:
        raise RuntimeError("window probe did not halt")
    core.stats.cycles = core.cycle
    name = controller.name
    if async_flushes:
        name += f"+{async_flushes}async-flush"
    return WindowMeasurement(
        scenario=name,
        window=core.transient_window_max,
        pseudo_retired=core.stats.pseudo_retired,
        runahead_episodes=core.stats.runahead_episodes,
        cycles=core.stats.cycles)


def measure_fig10(config=None, sled=4096, n3_flushes=1):
    """All three Fig. 10 scenarios; returns ``(n1, n2, n3)`` measurements."""
    n1 = measure_window(NoRunahead(), sled=sled, config=config)
    n2 = measure_window(OriginalRunahead(), sled=sled, config=config)
    n3 = measure_window(OriginalRunahead(), async_flushes=n3_flushes,
                        sled=sled, config=config)
    return n1, n2, n3

"""Classic Spectre baseline (no runahead).

The same gadget programs run on the plain out-of-order machine give the
baseline SPECRUN is compared against:

* the unpadded gadget leaks under ordinary speculation (the transient
  window inside the ROB is enough — Fig. 5a);
* with a nop sled longer than the ROB between the poisoned branch and
  the secret access, classic Spectre **cannot** reach the gadget, while
  runahead still can (Fig. 5b / Fig. 11) — the paper's headline
  advantage.
"""

from __future__ import annotations

from ..runahead.base import NoRunahead
from .specrun import AttackResult, SpecRunAttack


def run_classic_spectre(variant="pht", config=None, receiver=None,
                        noise=None, trials=1, **gadget_kwargs) -> AttackResult:
    """Run the gadget on the no-runahead machine.

    ``receiver`` / ``noise`` / ``trials`` select the external
    covert-channel measurement path (:mod:`repro.channel`) instead of
    the in-program probe, exactly as on the runahead machine — useful
    for comparing channel quality with and without runahead reach.
    """
    return SpecRunAttack(variant=variant, runahead=NoRunahead(),
                         config=config, receiver=receiver, noise=noise,
                         trials=trials, **gadget_kwargs).run()


def rob_limit_comparison(nop_padding, config=None, secret_value=127,
                         **gadget_kwargs):
    """The Fig. 11 experiment: same padded gadget, both machines.

    Returns ``(no_runahead_result, runahead_result)``.
    """
    from ..runahead.original import OriginalRunahead

    baseline = SpecRunAttack(
        variant="pht", runahead=NoRunahead(), config=config,
        secret_value=secret_value, nop_padding=nop_padding,
        **gadget_kwargs).run()
    runahead = SpecRunAttack(
        variant="pht", runahead=OriginalRunahead(), config=config,
        secret_value=secret_value, nop_padding=nop_padding,
        **gadget_kwargs).run()
    return baseline, runahead

"""Attack program builders: the Fig. 8 PoC and the Fig. 4 variants.

Each builder assembles one self-contained program containing both roles
of the paper's threat model — exactly as the paper's own PoC does (the
``attacker_function`` calls ``victim_function`` in Fig. 8):

1. *victim initialization*: the victim touches its secret once (the
   secret must be cache-resident for runahead to return its value — a
   faithfully reproduced limitation: runahead loads that miss to memory
   return INV, so SPECRUN cannot leak fully-uncached secrets; the
   negative test ``test_uncached_secret_does_not_leak`` pins this down);
2. *training* (attack step ①): the poisoning loop;
3. *flush phase* (step ②): evict the probe array and the trigger word D;
4. *trigger + transient execution* (step ③): call the victim with a
   malicious index; the victim's bound ``array1_size = f(D)`` misses to
   memory, runahead begins, the poisoned prediction steers execution into
   the gadget, the transmit load leaves its footprint;
5. *wait* (the paper's line 16 ``<some_operations>``): a delay loop that
   outlasts the runahead interval so the probe runs architecturally;
6. *probe* (step ④): flush+reload timing of every probe entry, stored to
   a results array.

Word-sized arithmetic replaces byte arithmetic: ``array1[x]`` lives at
``array1 + 8*x`` and the probe stride N is in bytes (default 512).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..isa.assembler import assemble
from ..isa.instructions import INSTR_BYTES, WORD_BYTES
from ..isa.memory_image import MemoryImage

PROBE_ENTRIES = 256
DEFAULT_STRIDE = 512
DEFAULT_SECRET = 86          # the Fig. 9 dip index
DEFAULT_TRAIN_ITERS = 24
DEFAULT_DELAY_ITERS = 900
TRAIN_INDEX = 1              # in-bounds index the training loop passes


@dataclass
class AttackProgram:
    """An assembled attack plus everything needed to interpret its run."""

    program: object
    image: MemoryImage
    variant: str
    secret_value: int
    malicious_index: int
    results_addr: int
    probe_entries: int
    probe_stride: int
    array1_addr: int
    array2_addr: int
    secret_addr: int
    initial_sp: int
    notes: str = ""
    #: True when the in-assembly probe loop was replaced by a plain halt
    #: so an external receiver (repro.channel) measures the hierarchy.
    external_probe: bool = False
    #: Probe indices the attacker's own training phase warms.  Relevant
    #: to receivers without a working ``clflush`` (evict+reload): the
    #: program cannot flush between training and trigger, so these
    #: entries stay cache-hot and must be excluded from decoding.
    warmed_probe_indices: tuple = ()
    #: Index passed to the victim at trigger time (None = the malicious
    #: out-of-bounds index; an in-bounds value builds the benign
    #: calibration twin used by prime+probe receivers).
    trigger_index: int = None

    def read_latencies(self, core):
        """Extract the probe latencies from a finished core."""
        if self.external_probe:
            raise RuntimeError(
                "external-probe build has no in-program probe loop; "
                "measure through a repro.channel receiver instead")
        return [int(core.memory.read_word(self.results_addr + i * WORD_BYTES))
                for i in range(self.probe_entries)]

    def expected_probe_index(self):
        """Index of the probe entry the transmit load touches."""
        return self.secret_value


def _base_image(array1_words, probe_entries, probe_stride, secret_value,
                secret_gap_words=48):
    """Common data layout for every variant.

    The returned image also records, as ``image.train_probe_index``, the
    probe entry a training call with ``x = TRAIN_INDEX`` transmits
    (``array1[TRAIN_INDEX]``'s value) — derived from the actual fill so
    the builders' ``warmed_probe_indices`` can never drift from the data.
    """
    image = MemoryImage()
    array1 = image.alloc_array("array1", array1_words)
    array1_values = [(i * 7 + 1) % probe_entries
                     for i in range(array1_words)]
    image.write_words(array1, array1_values)
    image.train_probe_index = array1_values[TRAIN_INDEX]
    # The secret lives OUT of array1's bounds, at a known distance.
    secret = image.alloc("secret_word", WORD_BYTES,
                         align=64)
    # Force a gap so the secret is not adjacent to array1's lines.
    image.write_word(secret, secret_value)
    array2 = image.alloc("array2", probe_entries * probe_stride)
    results = image.alloc_array("results", probe_entries)
    trigger = image.alloc_array("trigger_d", 2)   # the word D
    image.write_word(trigger, array1_words)       # array1_size = f(D)
    sp = image.alloc_stack(64)
    malicious_index = (secret - array1) // WORD_BYTES
    return image, array1, secret, array2, results, trigger, sp, \
        malicious_index


def _probe_and_support(probe_entries, probe_stride, delay_iters,
                       external_probe=False):
    """Assembly for the wait loop and the flush+reload probe.

    Register convention: r1-r14 scratch for the harness, r20+ for the
    victim.  The probe visits entries in a permuted order
    ``j' = (j * 167 + 13) mod entries`` — the standard real-PoC trick
    that defeats stride prefetching (vector runahead would otherwise
    prefetch the attacker's own future probe entries).  It writes
    ``results[j'] = access latency of array2[j' * stride]``.

    ``external_probe=True`` keeps the wait loop (the runahead interval
    must still end before the footprint is architectural) but replaces
    the probe loop with a halt: a :mod:`repro.channel` receiver measures
    the hierarchy after the run instead.
    """
    if external_probe:
        return f"""
    # ---- wait for the runahead interval to end (paper Fig. 8 line 16) --
        li   r1, {delay_iters}
    delay_loop:
        addi r1, r1, -1
        bne  r1, r0, delay_loop
        fence
        halt                    # probe phase runs externally (channel)
    """
    assert probe_entries & (probe_entries - 1) == 0, \
        "probe size must be a power of two for the permutation mask"
    return f"""
    # ---- wait for the runahead interval to end (paper Fig. 8 line 16) --
        li   r1, {delay_iters}
    delay_loop:
        addi r1, r1, -1
        bne  r1, r0, delay_loop
        fence

    # ---- probe phase (attack step 4) -----------------------------------
        li   r5, 0              # j
        li   r6, @array2
        li   r7, @results
    probe_loop:
        muli r4, r5, 167        # permuted index j' = (167 j + 13) mod n
        addi r4, r4, 13
        andi r4, r4, {probe_entries - 1}
        muli r8, r4, {probe_stride}
        add  r8, r8, r6         # &array2[j'*N]
        fence
        rdtsc r9
        load r10, r8, 0
        fence
        rdtsc r11
        sub  r12, r11, r9       # access latency
        slli r13, r4, 3
        add  r13, r13, r7
        store r12, r13, 0       # results[j'] = latency
        addi r5, r5, 1
        slti r14, r5, {probe_entries}
        bne  r14, r0, probe_loop
        halt
    """


def _flush_phase(probe_entries, probe_stride, extra_flush_lines=("trigger_d",),
                 flush_probe_array=True):
    """Flush the probe array and the trigger word(s).

    ``flush_probe_array=False`` models a receiver without ``clflush``
    over the probe array (evict+reload / prime+probe): only the trigger
    word(s) — the stalling-load precondition of the attack itself, not
    part of the probe channel — are still flushed.
    """
    flushes = "\n".join(
        f"""
        li   r4, @{symbol}
        clflush r4, 0""" for symbol in extra_flush_lines)
    if not flush_probe_array:
        return f"""
    # ---- flush phase (attack step 2, trigger word only) ------------------
        {flushes}
        fence
    """
    return f"""
    # ---- flush phase (attack step 2) ------------------------------------
        li   r2, @array2
        li   r3, {probe_entries}
    flush_loop:
        clflush r2, 0
        addi r2, r2, {probe_stride}
        addi r3, r3, -1
        bne  r3, r0, flush_loop
        {flushes}
        fence
    """


def build_pht_attack(secret_value=DEFAULT_SECRET, nop_padding=0,
                     train_iters=DEFAULT_TRAIN_ITERS,
                     probe_entries=PROBE_ENTRIES,
                     probe_stride=DEFAULT_STRIDE, array1_words=16,
                     delay_iters=DEFAULT_DELAY_ITERS,
                     touch_secret=True, external_probe=False,
                     flush_probe_array=True,
                     trigger_index=None) -> AttackProgram:
    """SpectrePHT under runahead — the paper's main PoC (Figs. 8 and 9).

    ``nop_padding`` inserts a nop sled between the poisoned bounds check
    and the secret access, pushing the gadget beyond the reach of the
    reorder buffer: the Fig. 11 experiment.

    ``external_probe`` / ``flush_probe_array`` adapt the program to the
    :mod:`repro.channel` receivers (external measurement; no ``clflush``
    over the probe array).  ``trigger_index`` overrides the index passed
    to the victim at attack time — an in-bounds value produces the
    benign calibration twin (identical layout, nothing transmitted
    transiently) that prime+probe decoding baselines against.
    """
    image, array1, secret, array2, results, trigger, sp, malicious = \
        _base_image(array1_words, probe_entries, probe_stride, secret_value)
    attack_index = malicious if trigger_index is None else trigger_index

    secret_touch = """
        li   r4, @secret_word
        load r15, r4, 0          # the victim legitimately uses its secret
        fence
    """ if touch_secret else ""

    padding = f"        .repeat {nop_padding}, nop\n" if nop_padding else ""

    source = f"""
    # ======================= attacker main ================================
        jmp  attacker_main

    # ===================== victim_function(x = r20) =======================
    # Fig. 8 lines 1-7: if (x < array1_size) {{ transmit(array1[x]); }}
    victim_function:
        li   r21, @trigger_d
        load r21, r21, 0         # array1_size = f(D): the stalling load
        bge  r20, r21, victim_end    # bounds check (poisoned branch)
{padding}        slli r22, r20, 3
        add  r22, r22, r26       # &array1[x]
        load r23, r22, 0         # S = array1[x]   (secret access)
        muli r24, r23, {probe_stride}
        add  r24, r24, r27       # &array2[S*N]
        load r25, r24, 0         # transmit secret into the cache
    victim_end:
        ret

    # ======================================================================
    attacker_main:
        li   r26, @array1
        li   r27, @array2
        {secret_touch}
    # ---- training (attack step 1): poison the PHT ------------------------
        li   r1, {train_iters}
    train_loop:
        li   r20, {TRAIN_INDEX}  # in-bounds index
        call victim_function
        addi r1, r1, -1
        bne  r1, r0, train_loop
    {_flush_phase(probe_entries, probe_stride,
                  flush_probe_array=flush_probe_array)}
    # ---- trigger runahead + transient execution (step 3) -----------------
        li   r20, {attack_index}    # malicious index: &secret - &array1
        call victim_function
    {_probe_and_support(probe_entries, probe_stride, delay_iters,
                        external_probe=external_probe)}
    """
    program = assemble(source, memory_image=image)
    # Training calls the gadget with x=TRAIN_INDEX, so its transmit
    # warms that entry's probe line; relevant when the probe array is
    # not flushed afterwards (evict+reload / prime+probe builds).
    warmed = (image.train_probe_index,)
    return AttackProgram(
        program=program, image=image, variant="pht",
        secret_value=secret_value, malicious_index=malicious,
        results_addr=results, probe_entries=probe_entries,
        probe_stride=probe_stride, array1_addr=array1, array2_addr=array2,
        secret_addr=secret, initial_sp=sp,
        notes=f"nop_padding={nop_padding}",
        external_probe=external_probe, warmed_probe_indices=warmed,
        trigger_index=trigger_index)


def build_btb_attack(secret_value=DEFAULT_SECRET,
                     train_iters=DEFAULT_TRAIN_ITERS,
                     probe_entries=PROBE_ENTRIES,
                     probe_stride=DEFAULT_STRIDE, array1_words=16,
                     delay_iters=DEFAULT_DELAY_ITERS, external_probe=False,
                     flush_probe_array=True,
                     trigger_index=None) -> AttackProgram:
    """SpectreBTB under runahead (Fig. 4a).

    The victim's indirect jump target is loaded from memory; during
    training that pointer names the gadget, so the BTB learns it.  At
    attack time the pointer architecturally names the benign block but
    its cache line is flushed — the jr's source is INV during runahead
    and the poisoned BTB prediction stands.
    """
    image, array1, secret, array2, results, trigger, sp, malicious = \
        _base_image(array1_words, probe_entries, probe_stride, secret_value)
    target_ptr = image.alloc_array("target_ptr", 2)

    source = f"""
        jmp  attacker_main

    # ============ victim_function(x = r20), indirect dispatch ============
    victim_function:
        li   r21, @target_ptr
        load r21, r21, 0         # jump target: flushed at attack time
        jr   r21                 # INV source in runahead -> BTB prediction
    victim_benign:
        ret
    victim_gadget:
        slli r22, r20, 3
        add  r22, r22, r26       # &array1[x]
        load r23, r22, 0         # secret access
        muli r24, r23, {probe_stride}
        add  r24, r24, r27
        load r25, r24, 0         # transmit
        ret

    attacker_main:
        li   r26, @array1
        li   r27, @array2
        li   r4, @secret_word
        load r15, r4, 0          # victim legitimately uses its secret
        fence
    # ---- training: make the victim's jr repeatedly take the gadget ------
        li   r2, @target_ptr
        li   r3, @victim_gadget_addr
        store r3, r2, 0          # target_ptr = &gadget
        li   r1, {train_iters}
    train_loop:
        li   r20, {TRAIN_INDEX}  # in-bounds: gadget runs benignly
        call victim_function
        addi r1, r1, -1
        bne  r1, r0, train_loop
    # ---- restore the benign target, then flush the pointer --------------
        li   r3, @victim_benign_addr
        store r3, r2, 0          # architectural target: benign block
        fence
    {_flush_phase(probe_entries, probe_stride,
                  extra_flush_lines=("target_ptr",),
                  flush_probe_array=flush_probe_array)}
    # ---- trigger ---------------------------------------------------------
        li   r20, {malicious if trigger_index is None else trigger_index}
        call victim_function
    {_probe_and_support(probe_entries, probe_stride, delay_iters,
                        external_probe=external_probe)}
    """
    # Pre-resolve the two code addresses used as data.
    labels = assemble(source, symbols=_label_stub(image)).labels
    image.symbols["victim_gadget_addr"] = labels["victim_gadget"]
    image.symbols["victim_benign_addr"] = labels["victim_benign"]
    program = assemble(source, memory_image=image)
    return AttackProgram(
        program=program, image=image, variant="btb",
        secret_value=secret_value, malicious_index=malicious,
        results_addr=results, probe_entries=probe_entries,
        probe_stride=probe_stride, array1_addr=array1, array2_addr=array2,
        secret_addr=secret, initial_sp=sp,
        external_probe=external_probe,
        warmed_probe_indices=(image.train_probe_index,),
        trigger_index=trigger_index)


def build_rsb_overwrite_attack(secret_value=DEFAULT_SECRET,
                               probe_entries=PROBE_ENTRIES,
                               probe_stride=DEFAULT_STRIDE,
                               array1_words=16,
                               delay_iters=DEFAULT_DELAY_ITERS,
                               external_probe=False,
                               flush_probe_array=True,
                               trigger_index=None) \
        -> AttackProgram:
    """SpectreRSB, direct-overwrite variant (Fig. 4b).

    The victim function replaces its own return address on the stack with
    a value loaded from a flushed line (``F`` in the figure).  The RSB
    still predicts the original call-site continuation — where the
    disclosure gadget sits, reachable only speculatively: architectural
    control always goes to ``F``'s benign landing point.
    """
    image, array1, secret, array2, results, trigger, sp, malicious = \
        _base_image(array1_words, probe_entries, probe_stride, secret_value)
    hijack_ptr = image.alloc_array("hijack_ptr", 2)

    source = f"""
        jmp  attacker_main

    # ===== victim: overwrites its return address with F = load(ptr) ======
    victim_function:
        li   r21, @hijack_ptr
        load r21, r21, 0         # F: flushed -> stalling load
        store r21, sp, 0         # replace the return address
        ret                      # target INV in runahead; RSB stands

    attacker_main:
        li   r26, @array1
        li   r27, @array2
        li   r4, @secret_word
        load r15, r4, 0          # victim legitimately uses its secret
        fence
    # ---- plant F: the architectural landing point ------------------------
        li   r2, @hijack_ptr
        li   r3, @benign_landing_addr
        store r3, r2, 0
        fence
    {_flush_phase(probe_entries, probe_stride,
                  extra_flush_lines=("hijack_ptr",),
                  flush_probe_array=flush_probe_array)}
    # ---- trigger ----------------------------------------------------------
        li   r20, {malicious if trigger_index is None else trigger_index}
        call victim_function
    # The RSB predicts this point: the gadget runs only transiently.
    rsb_gadget:
        slli r22, r20, 3
        add  r22, r22, r26
        load r23, r22, 0         # secret access
        muli r24, r23, {probe_stride}
        add  r24, r24, r27
        load r25, r24, 0         # transmit
    benign_landing:
    {_probe_and_support(probe_entries, probe_stride, delay_iters,
                        external_probe=external_probe)}
    """
    labels = assemble(source, symbols=_label_stub(image)).labels
    image.symbols["benign_landing_addr"] = labels["benign_landing"]
    program = assemble(source, memory_image=image)
    return AttackProgram(
        program=program, image=image, variant="rsb-overwrite",
        secret_value=secret_value, malicious_index=malicious,
        results_addr=results, probe_entries=probe_entries,
        probe_stride=probe_stride, array1_addr=array1, array2_addr=array2,
        secret_addr=secret, initial_sp=sp,
        external_probe=external_probe, trigger_index=trigger_index)


def build_rsb_flush_attack(secret_value=DEFAULT_SECRET,
                           probe_entries=PROBE_ENTRIES,
                           probe_stride=DEFAULT_STRIDE, array1_words=16,
                           delay_iters=DEFAULT_DELAY_ITERS,
                           external_probe=False, flush_probe_array=True,
                           trigger_index=None) -> AttackProgram:
    """SpectreRSB, stack-flush variant (Fig. 4c).

    The attacker desynchronizes the RSB from the in-memory stack (the
    single-address-space stand-in for ret2spec's stale cross-context RSB
    entries), flushes the victim's stack line, and triggers the victim's
    ``ret``: its in-memory return address misses to memory, runahead
    begins with the ret itself as the stalling load, and the stale RSB
    prediction — pointing at the gadget — steers transient execution.
    """
    image, array1, secret, array2, results, trigger, sp, malicious = \
        _base_image(array1_words, probe_entries, probe_stride, secret_value)
    # The word the victim's ret will architecturally read.
    ret_slot = sp - WORD_BYTES

    source = f"""
        jmp  attacker_main

    attacker_main:
        li   r26, @array1
        li   r27, @array2
        li   r4, @secret_word
        load r15, r4, 0          # victim legitimately uses its secret
        fence
    # ---- plant the architectural return target on the stack -------------
        li   r2, @benign_landing_addr
        addi sp, sp, -8
        store r2, sp, 0          # [sp] = benign continuation
        fence
    {_flush_phase(probe_entries, probe_stride,
                  flush_probe_array=flush_probe_array)}
        clflush sp, 0            # evict the victim's stack line (Fig. 4c)
        fence
        li   r20, {malicious if trigger_index is None else trigger_index}
        call tramp               # RSB now holds &rsb_gadget
    # RSB-predicted return point: the disclosure gadget (transient only).
    rsb_gadget:
        slli r22, r20, 3
        add  r22, r22, r26
        load r23, r22, 0         # secret access
        muli r24, r23, {probe_stride}
        add  r24, r24, r27
        load r25, r24, 0         # transmit
        jmp  rsb_gadget_end

    tramp:
        # Desync: drop the just-pushed frame and enter the victim's
        # return path without popping the RSB.
        addi sp, sp, 8
        jmp  victim_ret
    victim_ret:
        ret                      # [sp] flushed: stalling load, RSB stands

    rsb_gadget_end:
    benign_landing:
        addi sp, sp, 8           # unwind the planted slot
    {_probe_and_support(probe_entries, probe_stride, delay_iters,
                        external_probe=external_probe)}
    """
    labels = assemble(source, symbols=_label_stub(image)).labels
    image.symbols["benign_landing_addr"] = labels["benign_landing"]
    program = assemble(source, memory_image=image)
    return AttackProgram(
        program=program, image=image, variant="rsb-flush",
        secret_value=secret_value, malicious_index=malicious,
        results_addr=results, probe_entries=probe_entries,
        probe_stride=probe_stride, array1_addr=array1, array2_addr=array2,
        secret_addr=secret, initial_sp=sp,
        external_probe=external_probe, trigger_index=trigger_index)


def _label_stub(image):
    """Symbol table with placeholder code addresses for two-stage builds."""
    stub = dict(image.symbols)
    for name in ("victim_gadget_addr", "victim_benign_addr",
                 "benign_landing_addr"):
        stub.setdefault(name, 0)
    return stub


_BUILDERS = {
    "pht": build_pht_attack,
    "btb": build_btb_attack,
    "rsb-overwrite": build_rsb_overwrite_attack,
    "rsb-flush": build_rsb_flush_attack,
}


def build_attack(variant, **kwargs) -> AttackProgram:
    """Build an attack program by variant name."""
    try:
        builder = _BUILDERS[variant]
    except KeyError:
        raise ValueError(f"unknown attack variant: {variant!r}") from None
    return builder(**kwargs)

#!/usr/bin/env python3
"""CI driver for the multi-host campaign chaos smoke.

Runs the whole distributed story in one process tree:

1. build a clean single-host serial reference result;
2. start a ``repro campaign coordinate --until-done`` subprocess on a
   fixed port plus a fault-injecting proxy in front of it;
3. start two worker subprocesses pulling trials through the proxy;
4. SIGKILL one worker host mid-campaign and replace it;
5. wait for convergence and compare the campaign's result file
   byte-for-byte against the reference.

Usage: ``python tools/distributed_smoke.py --backend dir|sqlite``
(run from the repository root; exits nonzero on any divergence).
"""

import argparse
import os
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))
sys.path.insert(0, REPO)                     # for tests.campaign._chaos

from repro.campaign import Campaign, campaign_status          # noqa: E402
from repro.harness.executor import run_sweep                  # noqa: E402
from repro.harness.spec import Sweep                          # noqa: E402
from tests.campaign._chaos import (FlakyProxy, done_count,    # noqa: E402
                                   free_port, kill_host,
                                   spawn_coordinator, spawn_worker,
                                   wait_for_journal)


def smoke_sweep(n=80) -> Sweep:
    sweep = Sweep("smoke")
    for i in range(n):
        sweep.add("window", runahead="none", sled=512 + 6 * i,
                  config_base="small")
    return sweep


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=("dir", "sqlite"),
                        default="dir")
    parser.add_argument("--trials", type=int, default=80)
    args = parser.parse_args()
    cache_uri = "dir:cache" if args.backend == "dir" \
        else "sqlite:results.sqlite"

    sweep = smoke_sweep(args.trials)
    print(f"[smoke] reference: clean serial run of {len(sweep)} trials")
    reference = run_sweep(sweep, workers=1, cache=None).to_json()

    workdir = tempfile.mkdtemp(prefix=f"dist-smoke-{args.backend}-")
    campaign_dir = os.path.join(workdir, "camp")
    journal = os.path.join(campaign_dir, "journal.jsonl")
    Campaign.create(campaign_dir, sweep, cache=cache_uri)

    port = free_port()
    proxy = FlakyProxy(port, seed=7).start()
    log = open(os.path.join(workdir, "children.log"), "w")
    procs = []
    started = time.monotonic()
    try:
        coordinator = spawn_coordinator(campaign_dir, port,
                                        lease_seconds=2.0, log=log)
        procs.append(coordinator)
        print(f"[smoke] coordinator on :{port}, workers via flaky "
              f"proxy {proxy.url}")
        workers = [spawn_worker(proxy.url, f"smoke-{i}", log=log)
                   for i in range(2)]
        procs += workers

        class _Path:
            def read_text(self):
                with open(journal, encoding="utf-8") as handle:
                    return handle.read()
        wait_for_journal(_Path(),
                         lambda text: done_count(text)
                         >= len(sweep) // 4)
        print("[smoke] ~25% done: SIGKILL worker host smoke-0")
        kill_host(workers[0])
        replacement = spawn_worker(proxy.url, "smoke-replacement",
                                   log=log)
        procs.append(replacement)

        for worker in (workers[1], replacement):
            worker.wait(timeout=600)
        code = coordinator.wait(timeout=120)
        if code != 0:
            print(f"[smoke] FAIL: coordinator exited {code}")
            return 1
        for worker in (workers[1], replacement):
            if worker.returncode not in (0, 3):
                print(f"[smoke] FAIL: worker exited "
                      f"{worker.returncode}")
                return 1
    finally:
        for proc in procs:
            try:
                kill_host(proc)
            except Exception:
                pass
        proxy.stop()
        log.close()
        sys.stdout.write(
            open(os.path.join(workdir, "children.log")).read())

    with open(os.path.join(campaign_dir, "smoke.result.json"),
              encoding="utf-8") as handle:
        produced = handle.read()
    if produced != reference:
        print("[smoke] FAIL: distributed result differs from the "
              "clean serial run")
        return 1
    status = campaign_status(campaign_dir)
    if status["state"] != "finished" or status["remaining"]:
        print(f"[smoke] FAIL: campaign state {status['state']}, "
              f"{status['remaining']} remaining")
        return 1
    if proxy.faults == 0:
        print("[smoke] FAIL: the proxy never injected a fault")
        return 1
    print(f"[smoke] OK ({args.backend}): byte-identical after "
          f"{proxy.faults} injected faults / {proxy.exchanges} "
          f"exchanges, 1 host killed, "
          f"{time.monotonic() - started:.1f}s; hosts seen: "
          f"{', '.join(status['hosts'])}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Docs reference checker: fail on dangling symbols, flags and names.

Scans the markdown docs (``README.md`` + ``docs/*.md``) for references
to the codebase and verifies each one resolves against the *current*
source tree:

* ``repro.foo.bar`` dotted symbols (inline code or code blocks) must
  import — module, or attribute chain on a module;
* ``--flag`` tokens inside code spans must be an option of some
  ``python -m repro`` subcommand (or an explicitly allowlisted
  external flag);
* ``repro sweep <name>`` examples must name a real preset, and
  ``repro run <kind>`` a real trial kind;
* ``repro campaign <sub>`` / ``repro trace <sub>`` examples must name
  a subcommand the argument parser actually defines;
* workload/receiver/controller names in ``key=value`` CLI examples
  (``workload=``, ``receiver=``, ``runahead=``, ``corunner=``) must
  resolve through the harness registry;
* ``repro verify <target>`` examples (and ``target=``/``defense=``
  trial params) must name a registered verify target — or a well-formed
  ``gen:<family>:<seed>`` — and a defense the checker knows.

Run from the repository root (CI runs it as the ``docs-check`` step)::

    PYTHONPATH=src python tools/check_docs.py

Exit status 0 when every reference resolves; 1 with a per-reference
report otherwise.  Keeping this green is what lets the docs promise
that every named symbol and flag actually exists.
"""

from __future__ import annotations

import argparse
import importlib
import pathlib
import re
import sys
from typing import Iterable, List, Set

#: Flags that legitimately appear in docs but belong to external tools.
EXTERNAL_FLAGS = {
    "--cov",          # pytest-cov, mentioned as an optional extra
}

#: Doc files checked, relative to the repository root.
DOC_GLOBS = ("README.md", "docs/*.md")

_CODE_BLOCK = re.compile(r"```.*?```", re.DOTALL)
_INLINE_CODE = re.compile(r"`[^`\n]+`")
_SYMBOL = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
_FLAG = re.compile(r"(?<![\w\-/.])--[a-z][a-z0-9\-]*")
_SWEEP_NAME = re.compile(r"repro sweep ([a-z0-9_]+)")
_RUN_KIND = re.compile(r"repro run ([a-z0-9_]+)")
#: ``repro verify <target>`` — leading dash (flags) and ``<...>``
#: placeholders deliberately don't match.
_VERIFY_TARGET = re.compile(r"repro verify ([a-z][a-z0-9:\-]*)")
#: Command groups whose subcommand names docs may reference.
_GROUPED = ("campaign", "trace", "obs")
_GROUP_SUB = re.compile(
    r"repro (" + "|".join(_GROUPED) + r") ([a-z][a-z0-9\-]*)")
_KEYED_NAME = re.compile(
    r"\b(workload|receiver|corunner|runahead|contender|baseline|defense"
    r"|target)"
    r"=([A-Za-z0-9_.:\-]+)")
#: ``executor=fleet`` (CLI) and ``executor="fleet"`` (Python) forms
#: both resolve against the harness executor registry.
_EXECUTOR_NAME = re.compile(r"\bexecutor=\"?([a-z][a-z0-9\-]*)\"?")


def _code_spans(text: str) -> str:
    """Concatenate all code regions (fenced blocks + inline spans)."""
    parts = _CODE_BLOCK.findall(text)
    without_blocks = _CODE_BLOCK.sub("", text)
    parts.extend(span.strip("`") for span in
                 _INLINE_CODE.findall(without_blocks))
    return "\n".join(parts)


def _known_flags() -> Set[str]:
    """Every option string of every ``python -m repro`` (sub)parser."""
    from repro.__main__ import build_parser

    flags: Set[str] = set()

    def walk(parser):
        for action in parser._actions:
            flags.update(s for s in action.option_strings
                         if s.startswith("--"))
            if isinstance(action, argparse._SubParsersAction):
                for sub in action.choices.values():
                    walk(sub)

    walk(build_parser())
    return flags


def _known_subcommands(group: str) -> Set[str]:
    """Subcommand names of one ``python -m repro`` command group."""
    from repro.__main__ import build_parser

    for action in build_parser()._actions:
        if not isinstance(action, argparse._SubParsersAction):
            continue
        parser = action.choices.get(group)
        if parser is None:
            return set()
        return {name
                for sub_action in parser._actions
                if isinstance(sub_action, argparse._SubParsersAction)
                for name in sub_action.choices}
    return set()


def _resolve_symbol(symbol: str) -> bool:
    """True when a dotted ``repro.*`` path imports or getattrs."""
    parts = symbol.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def _verify_target_ok(name: str) -> bool:
    """True when a ``repro verify`` target resolves (registered or
    a well-formed ``gen:<family>:<seed>`` name)."""
    from repro.harness.runner import resolve_verify_target
    try:
        resolve_verify_target(name)
    except (KeyError, ValueError):
        return False
    return True


def check_file(path: pathlib.Path) -> List[str]:
    from repro.harness import presets
    from repro.harness.executor import EXECUTORS
    from repro.harness.registry import CONTROLLERS, get_workload
    from repro.harness.spec import TRIAL_KINDS
    from repro.channel.receiver import RECEIVERS

    problems: List[str] = []
    text = path.read_text(encoding="utf-8")
    code = _code_spans(text)

    for symbol in sorted(set(_SYMBOL.findall(text))):
        if not _resolve_symbol(symbol):
            problems.append(f"{path.name}: dangling symbol `{symbol}`")

    known_flags = _known_flags()
    for flag in sorted(set(_FLAG.findall(code))):
        if flag not in known_flags and flag not in EXTERNAL_FLAGS:
            problems.append(f"{path.name}: unknown CLI flag `{flag}`")

    for name in sorted(set(_SWEEP_NAME.findall(code))):
        if name not in presets.PRESETS:
            problems.append(f"{path.name}: unknown preset "
                            f"`repro sweep {name}`")
    for kind in sorted(set(_RUN_KIND.findall(code))):
        if kind not in TRIAL_KINDS:
            problems.append(f"{path.name}: unknown trial kind "
                            f"`repro run {kind}`")
    for name in sorted(set(_VERIFY_TARGET.findall(code))):
        if not _verify_target_ok(name):
            problems.append(f"{path.name}: unknown verify target "
                            f"`repro verify {name}`")
    for name in sorted(set(_EXECUTOR_NAME.findall(code))):
        if name not in EXECUTORS:
            problems.append(f"{path.name}: unknown executor "
                            f"`executor={name}`")
    for group, sub in sorted(set(_GROUP_SUB.findall(code))):
        if sub not in _known_subcommands(group):
            problems.append(f"{path.name}: unknown subcommand "
                            f"`repro {group} {sub}`")
    for key, value in sorted(set(_KEYED_NAME.findall(code))):
        if value.startswith("trace:") or "<" in value or value == "...":
            continue          # file-path replays / placeholders
        if "_" in value or value != value.lower():
            continue          # Python keyword argument, not a CLI name
                              # (registry names are lower-kebab-case)
        if key in ("workload", "corunner"):
            try:
                get_workload(value)
            except KeyError:
                problems.append(f"{path.name}: unknown workload "
                                f"`{key}={value}`")
        elif key == "receiver" and value not in RECEIVERS:
            problems.append(f"{path.name}: unknown receiver "
                            f"`receiver={value}`")
        elif key in ("runahead", "contender", "baseline") \
                and value not in CONTROLLERS:
            problems.append(f"{path.name}: unknown controller "
                            f"`{key}={value}`")
        elif key == "defense":
            from repro.verify.engine import DEFENSES
            if value not in DEFENSES:
                problems.append(f"{path.name}: unknown defense "
                                f"`defense={value}`")
        elif key == "target" and not _verify_target_ok(value):
            problems.append(f"{path.name}: unknown verify target "
                            f"`target={value}`")
    return problems


def doc_files(root: pathlib.Path) -> Iterable[pathlib.Path]:
    for pattern in DOC_GLOBS:
        yield from sorted(root.glob(pattern))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args(argv)
    root = pathlib.Path(args.root).resolve()

    checked = 0
    problems: List[str] = []
    for path in doc_files(root):
        checked += 1
        problems.extend(check_file(path))
    if not checked:
        print("docs-check: no doc files found — wrong --root?",
              file=sys.stderr)
        return 1
    if problems:
        print(f"docs-check: {len(problems)} dangling reference(s):",
              file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"docs-check: {checked} file(s), all references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
